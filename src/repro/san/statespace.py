"""Explicit state-space generation and CTMC solution for small SANs.

For models whose timed activities are all exponential (and whose gates
touch only discrete places), the SAN is an exact continuous-time Markov
chain over the reachable markings. This module generates that chain and
solves for its steady-state distribution with dense linear algebra —
useful to validate the discrete-event simulator against exact numbers
on small models (the repository's tests do exactly that, and the
correlated-failure birth–death chain of the paper's Figure 3 is solved
this way too).

Restrictions (checked, with clear errors):

* every timed activity's distribution is :class:`Exponential`
  (marking-dependent rates are fine — they are evaluated per marking);
* instantaneous activities and multi-case activities are supported,
  but case probabilities must not depend on continuous context;
* gate functions must mutate only discrete places (no ``ctx``, no
  clock reads) — violations surface as nondeterministic exploration
  and are the caller's responsibility, as with any CTMC tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .activities import TimedActivity
from .distributions import Exponential
from .errors import StateSpaceError
from .model import SANModel
from .simulator import SimulationState

__all__ = ["StateSpace", "StateSpaceGenerator", "SteadyStateSolution"]

Marking = Tuple[int, ...]

#: Default cap on explored markings, against accidental explosions.
DEFAULT_MAX_STATES = 200_000
_MAX_VANISHING_CHAIN = 10_000


@dataclass(frozen=True)
class SteadyStateSolution:
    """Steady-state distribution over tangible markings."""

    markings: Tuple[Marking, ...]
    probabilities: np.ndarray
    place_names: Tuple[str, ...]

    def probability_of(self, predicate: Callable[[Dict[str, int]], bool]) -> float:
        """Total probability of markings satisfying ``predicate``.

        The predicate receives a ``{place: tokens}`` dictionary.
        """
        total = 0.0
        for marking, probability in zip(self.markings, self.probabilities):
            as_dict = dict(zip(self.place_names, marking))
            if predicate(as_dict):
                total += float(probability)
        return total

    def expected_reward(self, rate: Callable[[Dict[str, int]], float]) -> float:
        """Expected steady-state value of a rate function of marking."""
        total = 0.0
        for marking, probability in zip(self.markings, self.probabilities):
            as_dict = dict(zip(self.place_names, marking))
            total += float(probability) * float(rate(as_dict))
        return total


@dataclass
class StateSpace:
    """The generated chain: tangible markings and transition rates."""

    markings: List[Marking]
    index: Dict[Marking, int]
    transitions: Dict[int, Dict[int, float]]
    place_names: Tuple[str, ...]

    @property
    def size(self) -> int:
        """Number of tangible markings."""
        return len(self.markings)

    def generator_matrix(self) -> np.ndarray:
        """Dense infinitesimal generator ``Q`` (rows sum to zero)."""
        n = self.size
        q = np.zeros((n, n), dtype=float)
        for source, targets in self.transitions.items():
            for target, rate in targets.items():
                if target != source:
                    q[source, target] += rate
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        return q

    def steady_state(self) -> SteadyStateSolution:
        """Solve ``pi Q = 0`` with ``sum(pi) = 1``.

        Requires an irreducible chain (or at least a unique stationary
        distribution); a singular system raises
        :class:`StateSpaceError`.
        """
        q = self.generator_matrix()
        n = self.size
        if n == 0:
            raise StateSpaceError("empty state space")
        if n == 1:
            return SteadyStateSolution(
                tuple(self.markings), np.array([1.0]), self.place_names
            )
        # Replace one balance equation with the normalisation constraint.
        a = q.T.copy()
        a[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(a, b)
        except np.linalg.LinAlgError as exc:
            raise StateSpaceError(f"singular generator matrix: {exc}") from exc
        if np.any(pi < -1e-9):
            raise StateSpaceError(
                "negative steady-state probabilities; chain may be reducible"
            )
        pi = np.clip(pi, 0.0, None)
        pi = pi / pi.sum()
        return SteadyStateSolution(tuple(self.markings), pi, self.place_names)


class StateSpaceGenerator:
    """Breadth-first reachability exploration of a SAN's markings."""

    def __init__(self, model: SANModel, max_states: int = DEFAULT_MAX_STATES) -> None:
        self.model = model
        self.max_states = max_states
        self._state = SimulationState(model, ctx=None)
        for activity in model.timed_activities:
            if not isinstance(activity.distribution, Exponential):
                raise StateSpaceError(
                    f"activity {activity.name!r}: state-space generation "
                    f"requires exponential distributions, got "
                    f"{type(activity.distribution).__name__}"
                )

    # ------------------------------------------------------------------
    def generate(self) -> StateSpace:
        """Explore all tangible markings reachable from the initial one."""
        model = self.model
        model.reset()
        initial = self._stabilised_markings(model.marking_vector())
        place_names = tuple(place.name for place in model.places)

        index: Dict[Marking, int] = {}
        markings: List[Marking] = []
        transitions: Dict[int, Dict[int, float]] = {}
        frontier: List[Marking] = []

        def intern(marking: Marking) -> int:
            existing = index.get(marking)
            if existing is not None:
                return existing
            if len(markings) >= self.max_states:
                raise StateSpaceError(
                    f"state space exceeds max_states={self.max_states}"
                )
            index[marking] = len(markings)
            markings.append(marking)
            frontier.append(marking)
            return index[marking]

        for marking, _probability in initial:
            intern(marking)

        while frontier:
            marking = frontier.pop()
            source = index[marking]
            transitions.setdefault(source, {})
            for activity, rate in self._enabled_with_rates(marking):
                for branch_probability, successor in self._fire_branches(
                    marking, activity
                ):
                    for stable, chain_probability in self._vanish(successor):
                        target = intern(stable)
                        effective = rate * branch_probability * chain_probability
                        if effective > 0:
                            row = transitions[source]
                            row[target] = row.get(target, 0.0) + effective
        model.reset()
        return StateSpace(markings, index, transitions, place_names)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _set(self, marking: Marking) -> None:
        self.model.set_marking_vector(marking)

    def _enabled_with_rates(self, marking: Marking):
        """Timed activities enabled in ``marking`` with current rates."""
        self._set(marking)
        state = self._state
        result = []
        for activity in self.model.timed_activities:
            if activity.enabled(state):
                distribution = activity.distribution
                assert isinstance(distribution, Exponential)
                result.append((activity, distribution.rate(state)))
        return result

    def _case_probabilities(self, activity: TimedActivity) -> List[float]:
        if len(activity.cases) == 1:
            return [1.0]
        probabilities = activity.case_probabilities
        if callable(probabilities):
            probabilities = probabilities(self._state)
        return [float(p) for p in probabilities]  # type: ignore[union-attr]

    def _fire_branches(self, marking: Marking, activity: TimedActivity):
        """Yield (probability, raw successor marking) per activity case."""
        self._set(marking)
        probabilities = self._case_probabilities(activity)
        branches = []
        for case_index, probability in enumerate(probabilities):
            if probability <= 0:
                continue
            self._set(marking)
            state = self._state
            for arc in activity.input_arcs:
                arc.place.remove(arc.weight)
            for gate in activity.input_gates:
                gate.function(state)
            case = activity.cases[case_index]
            for arc in case.output_arcs:
                arc.place.add(arc.weight)
            for gate in case.output_gates:
                gate.function(state)
            branches.append((probability, self.model.marking_vector()))
        return branches

    def _vanish(self, marking: Marking) -> List[Tuple[Marking, float]]:
        """Resolve instantaneous firings to tangible markings.

        Returns a distribution over tangible markings (branching on the
        case probabilities of instantaneous activities).
        """
        pending: List[Tuple[Marking, float]] = [(marking, 1.0)]
        tangible: Dict[Marking, float] = {}
        steps = 0
        while pending:
            current, probability = pending.pop()
            steps += 1
            if steps > _MAX_VANISHING_CHAIN:
                raise StateSpaceError("instantaneous livelock during generation")
            self._set(current)
            state = self._state
            fired = False
            for activity in self.model.instantaneous_activities:
                if activity.enabled(state):
                    for case_probability, successor in self._fire_branches(
                        current, activity
                    ):
                        pending.append((successor, probability * case_probability))
                    fired = True
                    break
            if not fired:
                tangible[current] = tangible.get(current, 0.0) + probability
        return list(tangible.items())

    def _stabilised_markings(self, marking: Marking) -> List[Tuple[Marking, float]]:
        """The initial tangible marking(s) after stabilisation."""
        resolved = self._vanish(marking)
        if not resolved:
            raise StateSpaceError("initial marking has no tangible resolution")
        return resolved
