"""Exception hierarchy for the SAN modeling package.

All errors raised by :mod:`repro.san` derive from :class:`SANError` so
callers can catch modeling problems without masking unrelated bugs.

The executive's guard rails raise *structured* subclasses of
:class:`SimulationError` — :class:`LivelockError`,
:class:`WallClockExceededError` and :class:`InvariantViolationError` —
that carry the offending activity, the simulated time and a snapshot
of the marking, so a failed run is diagnosable from the exception
alone (important when the run happened in a worker process and all
that comes back is the exception).

All structured errors remain picklable across process boundaries:
their diagnostic payload is carried in attributes *and* rendered into
the message, and ``__reduce__`` rebuilds the attributes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple


class SANError(Exception):
    """Base class for all SAN modeling and simulation errors."""


class ModelDefinitionError(SANError):
    """The model structure is inconsistent (dangling references,
    duplicate names, bad case probabilities, ...)."""


class SimulationError(SANError):
    """The simulation executive detected an illegal condition at run
    time (negative tokens, unstable instantaneous firing loop, ...)."""


class StateSpaceError(SANError):
    """State-space generation failed (unsupported primitive, explosion
    past the configured limit, absorbing-chain issues, ...)."""


class DistributionError(SANError):
    """A distribution received invalid parameters."""


def _format_time(time: Optional[float]) -> str:
    return "?" if time is None else f"{time:.6g}"


def _format_marking(marking: Optional[Dict[str, Any]], limit: int = 12) -> str:
    """Render a marking snapshot compactly for an exception message."""
    if not marking:
        return "(no marking captured)"
    items = sorted(marking.items())
    shown = ", ".join(f"{name}={value}" for name, value in items[:limit])
    if len(items) > limit:
        shown += f", ... ({len(items) - limit} more places)"
    return "{" + shown + "}"


class _DiagnosableSimulationError(SimulationError):
    """A simulation error carrying a state dump.

    Subclasses populate :attr:`time` (simulated time at failure) and
    :attr:`marking` (place name -> tokens/value snapshot).
    """

    def __init__(self, message: str, *, time: Optional[float] = None,
                 marking: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.time = time
        self.marking = dict(marking) if marking else {}

    def __reduce__(self) -> Tuple[Any, ...]:
        return (_rebuild_error, (type(self), self.args, self.__dict__.copy()))


def _rebuild_error(cls: type, args: Tuple[Any, ...], state: Dict[str, Any]):
    error = cls.__new__(cls)
    Exception.__init__(error, *args)
    error.__dict__.update(state)
    return error


class LivelockError(_DiagnosableSimulationError):
    """A safety valve tripped: the executive fired an unbounded chain
    of events without simulated time advancing.

    Attributes
    ----------
    activity:
        Name of the last activity that fired before the valve tripped.
    kind:
        ``"instantaneous"`` (stabilisation never converged) or
        ``"zero-delay"`` (timed events piling up at one instant).
    fired:
        How many firings the valve allowed before giving up.
    time / marking:
        Simulated time and marking snapshot at the failure.
    """

    def __init__(self, kind: str, activity: str, fired: int, *,
                 time: Optional[float] = None,
                 marking: Optional[Dict[str, Any]] = None) -> None:
        message = (
            f"{kind} livelock: {fired} firings without simulated time "
            f"advancing (last activity {activity!r} at t={_format_time(time)}); "
            f"marking {_format_marking(marking)}"
        )
        super().__init__(message, time=time, marking=marking)
        self.kind = kind
        self.activity = activity
        self.fired = fired


class WallClockExceededError(_DiagnosableSimulationError):
    """The run exceeded its real-time (wall-clock) budget.

    Attributes
    ----------
    budget / elapsed:
        The allowed and actually consumed wall-clock seconds.
    """

    def __init__(self, budget: float, elapsed: float, *,
                 time: Optional[float] = None,
                 marking: Optional[Dict[str, Any]] = None) -> None:
        message = (
            f"wall-clock budget exhausted: {elapsed:.3f} s used of "
            f"{budget:.3f} s allowed (simulated time t={_format_time(time)}); "
            f"marking {_format_marking(marking)}"
        )
        super().__init__(message, time=time, marking=marking)
        self.budget = budget
        self.elapsed = elapsed


class InvariantViolationError(_DiagnosableSimulationError):
    """A user-supplied invariant hook reported a violation.

    Attributes
    ----------
    invariant:
        Name of the violated invariant (the hook's ``__name__``).
    detail:
        The hook's human-readable description of what went wrong.
    """

    def __init__(self, invariant: str, detail: str, *,
                 time: Optional[float] = None,
                 marking: Optional[Dict[str, Any]] = None) -> None:
        message = (
            f"invariant {invariant!r} violated at t={_format_time(time)}: {detail}; "
            f"marking {_format_marking(marking)}"
        )
        super().__init__(message, time=time, marking=marking)
        self.invariant = invariant
        self.detail = detail
