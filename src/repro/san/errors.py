"""Exception hierarchy for the SAN modeling package.

All errors raised by :mod:`repro.san` derive from :class:`SANError` so
callers can catch modeling problems without masking unrelated bugs.
"""

from __future__ import annotations


class SANError(Exception):
    """Base class for all SAN modeling and simulation errors."""


class ModelDefinitionError(SANError):
    """The model structure is inconsistent (dangling references,
    duplicate names, bad case probabilities, ...)."""


class SimulationError(SANError):
    """The simulation executive detected an illegal condition at run
    time (negative tokens, unstable instantaneous firing loop, ...)."""


class StateSpaceError(SANError):
    """State-space generation failed (unsupported primitive, explosion
    past the configured limit, absorbing-chain issues, ...)."""


class DistributionError(SANError):
    """A distribution received invalid parameters."""
