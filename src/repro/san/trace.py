"""Structured event tracing.

Tracers observe every activity firing. The default :class:`NullTracer`
costs one no-op call per event; :class:`MemoryTracer` keeps events for
test assertions and debugging; :class:`WindowTracer` keeps only the
most recent events of long runs; :class:`SinkTracer` bridges firings
into the unified observability sink (:mod:`repro.obs.trace`), where
they interleave with cluster protocol events in one exported stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, List, Optional

from ..obs.trace import TraceSink

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "MemoryTracer",
    "WindowTracer",
    "CallbackTracer",
    "SinkTracer",
]


@dataclass(frozen=True)
class TraceEvent:
    """One activity firing: when, what, which case."""

    time: float
    activity: str
    case: int

    def __str__(self) -> str:
        suffix = f" [case {self.case}]" if self.case else ""
        return f"{self.time:.6f}: {self.activity}{suffix}"


class Tracer:
    """Interface: receives every firing via :meth:`record`."""

    def record(self, time: float, activity: str, case: int) -> None:
        """Handle one firing."""
        raise NotImplementedError


class NullTracer(Tracer):
    """Discards everything (the default)."""

    def record(self, time: float, activity: str, case: int) -> None:
        pass


class MemoryTracer(Tracer):
    """Stores every event in order.

    Only suitable for short runs; prefer :class:`WindowTracer` for
    long simulations.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, time: float, activity: str, case: int) -> None:
        self.events.append(TraceEvent(time, activity, case))

    def of_activity(self, name: str) -> List[TraceEvent]:
        """All events of one activity."""
        return [event for event in self.events if event.activity == name]

    def times_of(self, name: str) -> List[float]:
        """Firing times of one activity."""
        return [event.time for event in self.events if event.activity == name]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class WindowTracer(Tracer):
    """Keeps the most recent ``capacity`` events."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)

    def record(self, time: float, activity: str, case: int) -> None:
        self.events.append(TraceEvent(time, activity, case))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class CallbackTracer(Tracer):
    """Forwards each event to a user callback, optionally filtered to a
    set of activity names."""

    def __init__(
        self,
        callback: Callable[[TraceEvent], None],
        activities: Optional[List[str]] = None,
    ) -> None:
        self._callback = callback
        self._filter = set(activities) if activities is not None else None

    def record(self, time: float, activity: str, case: int) -> None:
        if self._filter is None or activity in self._filter:
            self._callback(TraceEvent(time, activity, case))


class SinkTracer(Tracer):
    """Forwards every firing into an observability sink as a
    ``san.firing`` event, unifying the SAN trace with the rest of the
    exported stream (sampling and windowing happen in the sink)."""

    def __init__(self, sink: TraceSink) -> None:
        self.sink = sink

    def record(self, time: float, activity: str, case: int) -> None:
        self.sink.emit(time, "san.firing", activity, case=case)
