"""Firing-time distributions for timed SAN activities.

Every distribution exposes:

* ``sample(rng, state)`` — draw a firing delay. ``state`` is the live
  simulation state (:class:`repro.san.simulator.SimulationState`) so a
  parameter may be *marking dependent*: any scalar parameter can be
  given either as a number or as a callable ``state -> float`` that is
  evaluated at sampling time.
* ``mean(state=None)`` — the analytic mean where a closed form exists
  (used by the analytical cross-checks and by tests).

The set covers everything the DSN'05 paper needs: deterministic
latencies (broadcast, dump, write-back, reboot), exponential events
(failures, recovery), the hyper-exponential mixture used for generic
correlated failures, and the max-of-``n``-exponentials order statistic
the paper derives for checkpoint coordination (its Section 5 closed
form ``Y = -(1/lambda) * log(1 - U**(1/n))``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from .errors import DistributionError

__all__ = [
    "Distribution",
    "Deterministic",
    "Exponential",
    "RateModulation",
    "Uniform",
    "Erlang",
    "Weibull",
    "LogNormal",
    "Hyperexponential",
    "MaxOfExponentials",
    "EULER_MASCHERONI",
    "harmonic_number",
]

#: Euler-Mascheroni constant, used by the harmonic-number approximation.
EULER_MASCHERONI = 0.57721566490153286

Param = Union[float, Callable[[object], float]]


def _resolve(param: Param, state: object) -> float:
    """Evaluate a possibly state-dependent scalar parameter."""
    if callable(param):
        return float(param(state))
    return float(param)


def harmonic_number(n: int) -> float:
    """Return the n-th harmonic number ``H_n = sum_{k=1}^{n} 1/k``.

    Exact summation below 10^6 terms; the asymptotic expansion
    ``ln n + gamma + 1/(2n) - 1/(12 n^2)`` beyond (relative error under
    1e-12 there).
    """
    if n < 1:
        raise ValueError(f"harmonic_number requires n >= 1, got {n}")
    if n < 1_000_000:
        return float(np.sum(1.0 / np.arange(1, n + 1)))
    return math.log(n) + EULER_MASCHERONI + 1.0 / (2 * n) - 1.0 / (12 * n * n)


class Distribution:
    """Abstract firing-delay distribution."""

    def sample(self, rng: np.random.Generator, state: object = None) -> float:
        """Draw one non-negative delay."""
        raise NotImplementedError

    def mean(self, state: object = None) -> float:
        """Analytic mean, if available."""
        raise NotImplementedError

    def cdf(self, x: float, state: object = None) -> float:
        """Closed-form ``P(X <= x)`` where one exists.

        Every concrete distribution in this module implements it; the
        validation layer's goodness-of-fit checks
        (:mod:`repro.validate.gof`) test each sampler against its own
        ``cdf``, so a sampler and its closed form can never drift
        apart silently.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Deterministic(Distribution):
    """A fixed (possibly marking-dependent) delay.

    Used for the paper's non-random events: broadcast overhead,
    checkpoint dump and write-back latencies, the master timeout, the
    correlated-failure window, and the system reboot time.
    """

    def __init__(self, value: Param) -> None:
        if not callable(value):
            if value < 0:
                raise DistributionError(
                    f"Deterministic delay must be >= 0, got {value}"
                )
            # Constant delay: shadow the method with an instance-level
            # closure returning the precomputed float. The simulator
            # binds `distribution.sample` once per activity, so this
            # removes a parameter resolution per scheduled event (the
            # checkpoint model's hottest activities are all constant
            # Deterministic).
            constant = float(value)
            self.sample = lambda rng, state=None: constant  # type: ignore[assignment]
        self._value = value

    def sample(self, rng: np.random.Generator, state: object = None) -> float:
        value = _resolve(self._value, state)
        if value < 0:
            raise DistributionError(f"Deterministic delay resolved negative: {value}")
        return value

    def mean(self, state: object = None) -> float:
        return _resolve(self._value, state)

    def cdf(self, x: float, state: object = None) -> float:
        """Degenerate step at the (resolved) value."""
        return 1.0 if x >= _resolve(self._value, state) else 0.0

    def __repr__(self) -> str:
        return f"Deterministic({self._value!r})"


@dataclass(frozen=True)
class RateModulation:
    """Declarative twin of a marking-dependent exponential rate.

    Mirrors the ``conditions=`` pattern on input gates: a callable
    rate stays the executable truth for the scalar kernels, while this
    annotation states the same function in a form batch kernels can
    evaluate from a marking matrix without calling into python —
    ``rate(state) == base * (factor if any place in places is marked
    else 1.0)``. The declaration is trusted, not checked; an
    annotation that disagrees with the callable is a modeling bug.
    """

    base: float
    factor: float
    places: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise DistributionError(
                f"RateModulation base rate must be > 0, got {self.base}"
            )
        if self.factor <= 0:
            raise DistributionError(
                f"RateModulation factor must be > 0, got {self.factor}"
            )
        if not self.places:
            raise DistributionError(
                "RateModulation needs at least one modulating place"
            )
        object.__setattr__(self, "places", tuple(self.places))


class Exponential(Distribution):
    """Exponential delay with rate ``rate`` (mean ``1/rate``).

    The rate may be marking dependent — the paper's failure activities
    scale their rate by the correlated-failure factor whenever the
    system is inside a correlated-failure window. A callable rate may
    carry a :class:`RateModulation` annotation declaring the same
    dependence declaratively for the batched kernel.
    """

    def __init__(
        self, rate: Param, modulation: Optional[RateModulation] = None
    ) -> None:
        if modulation is not None and not callable(rate):
            raise DistributionError(
                "modulation= only applies to a state-dependent (callable) "
                "rate; a constant rate needs no annotation"
            )
        self.modulation = modulation
        if not callable(rate):
            if rate <= 0:
                raise DistributionError(f"Exponential rate must be > 0, got {rate}")
            # Constant rate: precompute the scale. `1.0 / float(rate)`
            # is exactly the value the generic path would compute, so
            # the draw is bit-identical.
            scale = 1.0 / float(rate)
            self.sample = (  # type: ignore[assignment]
                lambda rng, state=None: float(rng.exponential(scale))
            )
        self._rate = rate

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Build from a mean delay rather than a rate."""
        if mean <= 0:
            raise DistributionError(f"Exponential mean must be > 0, got {mean}")
        return cls(1.0 / mean)

    def rate(self, state: object = None) -> float:
        """The current rate (evaluating a state-dependent callable)."""
        return _resolve(self._rate, state)

    def sample(self, rng: np.random.Generator, state: object = None) -> float:
        rate = self.rate(state)
        if rate <= 0:
            raise DistributionError(f"Exponential rate resolved non-positive: {rate}")
        return float(rng.exponential(1.0 / rate))

    def mean(self, state: object = None) -> float:
        return 1.0 / self.rate(state)

    def cdf(self, x: float, state: object = None) -> float:
        """``1 - exp(-rate * x)``."""
        if x <= 0:
            return 0.0
        return -math.expm1(-self.rate(state) * x)

    def __repr__(self) -> str:
        return f"Exponential(rate={self._rate!r})"


class Uniform(Distribution):
    """Uniform delay on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise DistributionError(f"Uniform requires 0 <= low <= high, got [{low}, {high}]")
        self._low = float(low)
        self._high = float(high)

    def sample(self, rng: np.random.Generator, state: object = None) -> float:
        return float(rng.uniform(self._low, self._high))

    def mean(self, state: object = None) -> float:
        return 0.5 * (self._low + self._high)

    def cdf(self, x: float, state: object = None) -> float:
        if x <= self._low:
            return 0.0
        if x >= self._high:
            return 1.0
        return (x - self._low) / (self._high - self._low)

    def __repr__(self) -> str:
        return f"Uniform({self._low}, {self._high})"


class Erlang(Distribution):
    """Erlang-``k`` delay: sum of ``k`` iid exponentials of rate ``rate``.

    Handy for modeling multi-stage latencies with less variance than a
    single exponential (e.g. staged recovery).
    """

    def __init__(self, k: int, rate: float) -> None:
        if k < 1:
            raise DistributionError(f"Erlang shape k must be >= 1, got {k}")
        if rate <= 0:
            raise DistributionError(f"Erlang rate must be > 0, got {rate}")
        self._k = int(k)
        self._rate = float(rate)

    def sample(self, rng: np.random.Generator, state: object = None) -> float:
        return float(rng.gamma(self._k, 1.0 / self._rate))

    def mean(self, state: object = None) -> float:
        return self._k / self._rate

    def cdf(self, x: float, state: object = None) -> float:
        """``1 - exp(-rx) * sum_{i<k} (rx)^i / i!`` (integer-shape
        gamma, evaluated by the finite series)."""
        if x <= 0:
            return 0.0
        rx = self._rate * x
        term = 1.0
        total = 1.0
        for i in range(1, self._k):
            term *= rx / i
            total += term
        return max(0.0, min(1.0, 1.0 - math.exp(-rx) * total))

    def __repr__(self) -> str:
        return f"Erlang(k={self._k}, rate={self._rate})"


class Weibull(Distribution):
    """Weibull delay with shape ``k`` and scale ``lam``.

    Included because hardware-failure fits in the literature are often
    Weibull; the paper itself uses exponentials, and tests compare the
    two regimes.
    """

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise DistributionError(
                f"Weibull requires shape > 0 and scale > 0, got ({shape}, {scale})"
            )
        self._shape = float(shape)
        self._scale = float(scale)

    def sample(self, rng: np.random.Generator, state: object = None) -> float:
        return float(self._scale * rng.weibull(self._shape))

    def mean(self, state: object = None) -> float:
        return self._scale * math.gamma(1.0 + 1.0 / self._shape)

    def cdf(self, x: float, state: object = None) -> float:
        """``1 - exp(-(x / scale)^shape)``."""
        if x <= 0:
            return 0.0
        return -math.expm1(-((x / self._scale) ** self._shape))

    def __repr__(self) -> str:
        return f"Weibull(shape={self._shape}, scale={self._scale})"


class LogNormal(Distribution):
    """Log-normal delay parameterised by the underlying normal's
    ``mu`` and ``sigma``."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0:
            raise DistributionError(f"LogNormal sigma must be >= 0, got {sigma}")
        self._mu = float(mu)
        self._sigma = float(sigma)

    def sample(self, rng: np.random.Generator, state: object = None) -> float:
        return float(rng.lognormal(self._mu, self._sigma))

    def mean(self, state: object = None) -> float:
        return math.exp(self._mu + 0.5 * self._sigma**2)

    def cdf(self, x: float, state: object = None) -> float:
        """``Phi((ln x - mu) / sigma)``; degenerate step for sigma 0."""
        if x <= 0:
            return 0.0
        if self._sigma == 0:
            return 1.0 if math.log(x) >= self._mu else 0.0
        z = (math.log(x) - self._mu) / self._sigma
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

    def __repr__(self) -> str:
        return f"LogNormal(mu={self._mu}, sigma={self._sigma})"


class Hyperexponential(Distribution):
    """Probabilistic mixture of exponentials.

    With probability ``probs[i]`` the delay is drawn from an
    exponential of rate ``rates[i]``. This is the classical
    hyper-exponential form the paper cites for generic correlated
    failures: the system alternately sees an independent failure rate
    and a (much larger) correlated failure rate.
    """

    def __init__(self, probs: Sequence[float], rates: Sequence[Param]) -> None:
        if len(probs) != len(rates) or not probs:
            raise DistributionError("Hyperexponential needs matching, non-empty probs/rates")
        if any(p < 0 for p in probs) or not math.isclose(sum(probs), 1.0, abs_tol=1e-9):
            raise DistributionError(f"Hyperexponential probs must be a distribution: {probs}")
        if any((not callable(r)) and r <= 0 for r in rates):
            raise DistributionError(f"Hyperexponential rates must be > 0: {rates}")
        self._probs = [float(p) for p in probs]
        self._rates = list(rates)

    def sample(self, rng: np.random.Generator, state: object = None) -> float:
        branch = int(rng.choice(len(self._probs), p=self._probs))
        rate = _resolve(self._rates[branch], state)
        if rate <= 0:
            raise DistributionError(f"Hyperexponential rate resolved non-positive: {rate}")
        return float(rng.exponential(1.0 / rate))

    def mean(self, state: object = None) -> float:
        return sum(
            p / _resolve(r, state) for p, r in zip(self._probs, self._rates)
        )

    def cdf(self, x: float, state: object = None) -> float:
        """Mixture CDF ``sum_i p_i * (1 - exp(-r_i * x))``."""
        if x <= 0:
            return 0.0
        return sum(
            p * -math.expm1(-_resolve(r, state) * x)
            for p, r in zip(self._probs, self._rates)
        )

    def __repr__(self) -> str:
        return f"Hyperexponential(probs={self._probs}, rates={self._rates!r})"


class MaxOfExponentials(Distribution):
    """The maximum of ``n`` iid exponential variables of rate ``rate``.

    This is the paper's coordination-time law (Section 5): with ``n``
    compute nodes whose quiesce times are iid exponential with mean
    MTTQ, the time until *all* are quiesced is the maximum order
    statistic, with CDF ``F_Y(y) = (1 - exp(-rate * y)) ** n``. The
    paper samples it by inversion as

        ``Y = -(1/rate) * log(1 - U ** (1/n))``

    which is exactly what :meth:`sample` implements. Both ``rate`` and
    ``n`` may be marking dependent (``n`` is the configured number of
    coordinating nodes).
    """

    def __init__(self, rate: Param, n: Union[int, Callable[[object], int]]) -> None:
        if not callable(rate) and rate <= 0:
            raise DistributionError(f"MaxOfExponentials rate must be > 0, got {rate}")
        if not callable(n) and n < 1:
            raise DistributionError(f"MaxOfExponentials n must be >= 1, got {n}")
        self._rate = rate
        self._n = n

    def _params(self, state: object) -> "tuple[float, int]":
        rate = _resolve(self._rate, state)
        n = self._n(state) if callable(self._n) else self._n
        if rate <= 0 or n < 1:
            raise DistributionError(
                f"MaxOfExponentials resolved invalid params rate={rate}, n={n}"
            )
        return rate, int(n)

    def sample(self, rng: np.random.Generator, state: object = None) -> float:
        rate, n = self._params(state)
        u = float(rng.random())
        # Guard the open interval: u == 0 would give log(0) for n == 1 paths,
        # u == 1 cannot occur with numpy's [0, 1) generator.
        u = min(max(u, 1e-300), 1.0 - 1e-16)
        # For huge n, u**(1/n) -> 1 and 1 - u**(1/n) underflows; use expm1
        # for a numerically stable evaluation of 1 - exp(log(u)/n).
        inner = -math.expm1(math.log(u) / n)
        if inner <= 0.0:
            inner = 5e-324
        return -math.log(inner) / rate

    def mean(self, state: object = None) -> float:
        """``E[Y] = H_n / rate`` — the harmonic-number growth that makes
        coordination overhead logarithmic in the node count."""
        rate, n = self._params(state)
        return harmonic_number(n) / rate

    def cdf(self, y: float, state: object = None) -> float:
        """``P(Y <= y) = (1 - exp(-rate*y)) ** n``, evaluated stably."""
        rate, n = self._params(state)
        if y <= 0:
            return 0.0
        # (1 - e^{-ry})^n == exp(n * log1p(-e^{-ry}))
        inner = -math.exp(-rate * y)
        if inner >= 0.0:  # pragma: no cover - defensive
            return 1.0
        return math.exp(n * math.log1p(inner))

    def __repr__(self) -> str:
        return f"MaxOfExponentials(rate={self._rate!r}, n={self._n!r})"
