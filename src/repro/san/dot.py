"""GraphViz (DOT) export of SAN models.

Renders a :class:`~repro.san.model.SANModel` in the classic SAN visual
vocabulary so the composed checkpoint model (or any user model) can be
inspected with ``dot -Tsvg``:

* places — circles, labelled with their initial marking when non-zero;
* timed activities — hollow boxes;
* instantaneous activities — thin filled bars;
* input/output arcs — solid arrows (weight annotated when > 1);
* input-gate *declared reads* — dashed grey edges (the enabling
  predicate's data dependencies);
* ``resample_on`` dependencies — dotted grey edges.

``python -m repro dot`` prints the full checkpoint model; clusters
group activities by submodel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .model import SANModel

__all__ = ["to_dot"]


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def to_dot(
    model: SANModel,
    graph_name: str = "san",
    group_by_submodel: bool = True,
    include_gate_reads: bool = True,
) -> str:
    """Render the model as a DOT digraph string."""
    lines: List[str] = [
        f"digraph {_quote(graph_name)} {{",
        "  rankdir=LR;",
        "  node [fontsize=10];",
    ]

    # Places.
    for place in model.places:
        label = place.name
        if place.initial:
            label += f"\\n({place.initial})"
        lines.append(
            f"  {_quote('p:' + place.name)} [shape=circle, label={_quote(label)}];"
        )
    for extended in model.extended_places:
        lines.append(
            f"  {_quote('p:' + extended.name)} "
            f"[shape=doublecircle, label={_quote(extended.name)}];"
        )

    # Activities, optionally clustered by submodel.
    activity_to_submodel: Dict[str, str] = {}
    for submodel in model.submodels:
        for activity_name in model.submodel_activities(submodel):
            activity_to_submodel[activity_name] = submodel

    def activity_node(activity) -> str:
        shape = "box" if activity.timed else "box"
        style = "" if activity.timed else ", style=filled, fillcolor=black, fontcolor=white, height=0.1"
        return (
            f"  {_quote('a:' + activity.name)} "
            f"[shape={shape}, label={_quote(activity.name)}{style}];"
        )

    if group_by_submodel and model.submodels:
        clusters: Dict[str, List] = {}
        loose = []
        for activity in model.activities:
            submodel = activity_to_submodel.get(activity.name)
            if submodel is None:
                loose.append(activity)
            else:
                clusters.setdefault(submodel, []).append(activity)
        for index, (submodel, activities) in enumerate(sorted(clusters.items())):
            lines.append(f"  subgraph cluster_{index} {{")
            lines.append(f"    label={_quote(submodel)};")
            lines.append("    color=grey;")
            for activity in activities:
                lines.append("  " + activity_node(activity))
            lines.append("  }")
        for activity in loose:
            lines.append(activity_node(activity))
    else:
        for activity in model.activities:
            lines.append(activity_node(activity))

    # Arcs and gate dependencies.
    for activity in model.activities:
        a_node = _quote("a:" + activity.name)
        for arc in activity.input_arcs:
            attributes = "" if arc.weight == 1 else f' [label="{arc.weight}"]'
            lines.append(f"  {_quote('p:' + arc.place.name)} -> {a_node}{attributes};")
        seen_outputs: Set[str] = set()
        for case_index, case in enumerate(activity.cases):
            case_label = (
                "" if len(activity.cases) == 1 else f' [label="case {case_index}"]'
            )
            for arc in case.output_arcs:
                weight = "" if arc.weight == 1 else f" x{arc.weight}"
                key = f"{arc.place.name}/{case_index}"
                if key in seen_outputs:
                    continue
                seen_outputs.add(key)
                lines.append(
                    f"  {a_node} -> {_quote('p:' + arc.place.name)}{case_label};"
                )
        if include_gate_reads:
            for gate in activity.input_gates:
                for name in gate.reads:
                    lines.append(
                        f"  {_quote('p:' + name)} -> {a_node} "
                        f"[style=dashed, color=grey, arrowhead=none];"
                    )
            if activity.timed:
                for name in activity.resample_on:
                    lines.append(
                        f"  {_quote('p:' + name)} -> {a_node} "
                        f"[style=dotted, color=grey, arrowhead=none];"
                    )

    lines.append("}")
    return "\n".join(lines)
