"""Kernel instrumentation: per-run counters of the simulation executive.

The next-event kernel counts the work it does — heap traffic, enabling
checks performed and skipped, re-samples, stabilisation chains — and
reports it as a :class:`KernelStats` on
:attr:`~repro.san.simulator.SimulationOutput.kernel_stats`. The
counters are how the incremental (dependency-indexed) kernel proves
its keep: ``enabled_checks_skipped`` is exactly the re-scan work the
dirty-set machinery avoided, and ``events_per_sec`` is the headline
throughput gated by ``benchmarks/bench_engine.py``.

The module also provides a tiny process-local aggregator so drivers
that execute many runs (figure sweeps, batch means) can accumulate one
summary: the CLI's ``--kernel-stats`` flag enables it around a sweep
and prints :func:`aggregated` afterwards.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "KernelStats",
    "enable_aggregation",
    "disable_aggregation",
    "aggregation_enabled",
    "record",
    "aggregated",
]


@dataclass
class KernelStats:
    """Counters of one :meth:`Simulator.run` call (or a merged set).

    Attributes
    ----------
    kernel:
        ``"incremental"`` or ``"full"`` (``"mixed"`` after merging
        runs of different kernels).
    runs:
        Number of merged runs (1 for a single run).
    events:
        Activity firings (timed + instantaneous).
    wall_seconds:
        Real time the run(s) took.
    heap_pushes:
        Entries pushed onto the pending-event heap.
    stale_pops:
        Heap entries popped and discarded because their clock had been
        invalidated (generation mismatch) since the push.
    enabled_checks:
        Activity enabling evaluations actually performed.
    enabled_checks_skipped:
        Evaluations a full rescan would have performed that the
        dependency index proved unnecessary (0 for the full kernel).
    resamples:
        Firing-delay distribution samples drawn.
    clock_invalidations:
        Pending clocks discarded (activity disabled, or a
        ``resample_on`` place changed).
    dirty_notifications:
        Place mutations delivered to the kernel's dirty list
        (0 for the full kernel, which does not collect them).
    stabilisations:
        Stabilisation passes executed (one per event, plus one at the
        start of each run).
    stabilisation_firings:
        Instantaneous firings across all stabilisation passes.
    max_stabilisation_chain:
        Longest single stabilisation chain observed.
    batch_width:
        Replications advanced in lockstep (0 for the scalar kernels;
        the maximum width after merging batches).
    batch_steps:
        Lockstep iterations of the batched kernel's main loop.
    batch_row_steps:
        Row-events actually fired across all lockstep steps; with
        ``batch_capacity`` this yields the batch occupancy.
    batch_capacity:
        Row-slots available across all lockstep steps
        (``steps * width`` summed over merged runs).
    vector_firings:
        Firings the batched kernel executed on its vectorized path.
    scalar_fallback_firings:
        Firings that diverged from the common fire plan and took the
        per-row scalar bridge.
    """

    kernel: str = ""
    runs: int = 1
    events: int = 0
    wall_seconds: float = 0.0
    heap_pushes: int = 0
    stale_pops: int = 0
    enabled_checks: int = 0
    enabled_checks_skipped: int = 0
    resamples: int = 0
    clock_invalidations: int = 0
    dirty_notifications: int = 0
    stabilisations: int = 0
    stabilisation_firings: int = 0
    max_stabilisation_chain: int = 0
    batch_width: int = 0
    batch_steps: int = 0
    batch_row_steps: int = 0
    batch_capacity: int = 0
    vector_firings: int = 0
    scalar_fallback_firings: int = 0

    @property
    def events_per_sec(self) -> float:
        """Wall-clock event throughput (0 when no time elapsed)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events / self.wall_seconds

    @property
    def check_efficiency(self) -> float:
        """Fraction of full-rescan enabling checks avoided (0..1)."""
        total = self.enabled_checks + self.enabled_checks_skipped
        if total == 0:
            return 0.0
        return self.enabled_checks_skipped / total

    @property
    def batch_occupancy(self) -> float:
        """Fraction of lockstep row-slots that fired an event (0..1).

        Drops below 1 as replications finish at different step counts;
        a low value means the batch wastes capacity on drained rows.
        """
        if self.batch_capacity == 0:
            return 0.0
        return self.batch_row_steps / self.batch_capacity

    @property
    def scalar_fallback_rate(self) -> float:
        """Fraction of batched firings that took the per-row scalar
        bridge instead of the vectorized path (0..1)."""
        total = self.vector_firings + self.scalar_fallback_firings
        if total == 0:
            return 0.0
        return self.scalar_fallback_firings / total

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Fold ``other`` into this instance (in place) and return it."""
        if not self.kernel:
            self.kernel = other.kernel
        elif other.kernel and other.kernel != self.kernel:
            self.kernel = "mixed"
        self.runs += other.runs
        self.events += other.events
        self.wall_seconds += other.wall_seconds
        self.heap_pushes += other.heap_pushes
        self.stale_pops += other.stale_pops
        self.enabled_checks += other.enabled_checks
        self.enabled_checks_skipped += other.enabled_checks_skipped
        self.resamples += other.resamples
        self.clock_invalidations += other.clock_invalidations
        self.dirty_notifications += other.dirty_notifications
        self.stabilisations += other.stabilisations
        self.stabilisation_firings += other.stabilisation_firings
        self.max_stabilisation_chain = max(
            self.max_stabilisation_chain, other.max_stabilisation_chain
        )
        self.batch_width = max(self.batch_width, other.batch_width)
        self.batch_steps += other.batch_steps
        self.batch_row_steps += other.batch_row_steps
        self.batch_capacity += other.batch_capacity
        self.vector_firings += other.vector_firings
        self.scalar_fallback_firings += other.scalar_fallback_firings
        return self

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-serialisable), derived rates included."""
        data = asdict(self)
        data["events_per_sec"] = self.events_per_sec
        data["check_efficiency"] = self.check_efficiency
        data["batch_occupancy"] = self.batch_occupancy
        data["scalar_fallback_rate"] = self.scalar_fallback_rate
        return data

    def summary(self) -> str:
        """Multi-line human-readable report (the CLI's output)."""
        lines = [
            f"kernel: {self.kernel or 'unknown'} ({self.runs} run(s))",
            f"  events: {self.events}  wall: {self.wall_seconds:.3f} s  "
            f"throughput: {self.events_per_sec:,.0f} events/s",
            f"  enabled checks: {self.enabled_checks} performed, "
            f"{self.enabled_checks_skipped} skipped "
            f"({100.0 * self.check_efficiency:.1f}% avoided)",
            f"  heap: {self.heap_pushes} pushes, {self.stale_pops} stale pops",
            f"  clocks: {self.resamples} samples, "
            f"{self.clock_invalidations} invalidations",
            f"  dirty notifications: {self.dirty_notifications}",
            f"  stabilisation: {self.stabilisations} passes, "
            f"{self.stabilisation_firings} instantaneous firings, "
            f"longest chain {self.max_stabilisation_chain}",
        ]
        if self.batch_steps:
            lines.append(
                f"  batch: width {self.batch_width}, "
                f"{self.batch_steps} lockstep steps, "
                f"occupancy {100.0 * self.batch_occupancy:.1f}%, "
                f"scalar fallback {100.0 * self.scalar_fallback_rate:.2f}% "
                f"({self.scalar_fallback_firings} of "
                f"{self.vector_firings + self.scalar_fallback_firings} firings)"
            )
        return "\n".join(lines)


#: Process-local aggregation target (None = aggregation disabled).
_aggregate: List[Optional[KernelStats]] = [None]


def enable_aggregation(reset: bool = True) -> None:
    """Start accumulating every recorded run into one summary."""
    if reset or _aggregate[0] is None:
        _aggregate[0] = KernelStats(runs=0)


def disable_aggregation() -> None:
    """Stop accumulating and drop the current aggregate."""
    _aggregate[0] = None


def aggregation_enabled() -> bool:
    """True while :func:`record` is accumulating."""
    return _aggregate[0] is not None


def record(stats: Optional[KernelStats]) -> None:
    """Fold one run's stats into the aggregate (no-op when disabled)."""
    target = _aggregate[0]
    if target is not None and stats is not None:
        target.merge(stats)


def aggregated() -> Optional[KernelStats]:
    """The current aggregate, or ``None`` when aggregation is off."""
    return _aggregate[0]
