"""Replicated composition: Möbius-style Rep over submodel builders.

The paper's model shares state between *distinct* submodels (Join by
place name). Möbius additionally offers **Rep**: stamping several
copies of one submodel into a model, each with private state, while
selected places stay shared across all replicas. This module provides
that operator for builder-function submodels:

    def station(ns, index):
        queue = ns.add_place("queue")          # private per replica
        pool = ns.add_place("pool", initial=5) # shared if declared so
        ns.add_activity(TimedActivity(
            "serve", Exponential(1.0), input_arcs=[Arc(queue)], ...))

    replicate(model, station, count=3, shared=["pool"])

Replica ``i`` sees its private names prefixed (``rep0.queue``) and the
declared shared names untouched. Activity names are prefixed the same
way, so traces and firing counters stay per-replica. Builders that
need a resolved name (for gate ``reads`` declarations or
``resample_on``) call :meth:`Namespace.name`.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Set

from .activities import Activity
from .errors import ModelDefinitionError
from .model import SANModel
from .places import ExtendedPlace, Place

__all__ = ["Namespace", "replicate"]


class Namespace:
    """A view of a :class:`SANModel` that prefixes private names.

    Parameters
    ----------
    model:
        The underlying model every replica is stamped into.
    prefix:
        Prefix applied to private place and activity names.
    shared:
        Names left un-prefixed (state shared across replicas).
    """

    def __init__(self, model: SANModel, prefix: str, shared: Set[str]) -> None:
        if not prefix:
            raise ModelDefinitionError("namespace prefix must be non-empty")
        self._model = model
        self._prefix = prefix
        self._shared = set(shared)

    # ------------------------------------------------------------------
    def name(self, name: str) -> str:
        """The resolved (possibly prefixed) name of a place."""
        if name in self._shared:
            return name
        return self._prefix + name

    @property
    def prefix(self) -> str:
        """This replica's prefix."""
        return self._prefix

    @property
    def model(self) -> SANModel:
        """The underlying shared model."""
        return self._model

    # ------------------------------------------------------------------
    def add_place(self, name: str, initial: int = 0) -> Place:
        """Create (or fetch) a place under this namespace."""
        return self._model.add_place(self.name(name), initial)

    def add_extended_place(self, name: str, initial: float = 0.0) -> ExtendedPlace:
        """Create (or fetch) an extended place under this namespace."""
        return self._model.add_extended_place(self.name(name), initial)

    def add_activity(self, activity: Activity, submodel: str = "") -> Activity:
        """Register an activity, prefixing its name.

        The activity object is renamed in place — builders construct a
        fresh activity per replica, so the rename is safe.
        """
        activity.name = self._prefix + activity.name
        label = submodel or self._prefix.rstrip(".")
        return self._model.add_activity(activity, submodel=label)

    def place(self, name: str) -> Place:
        """Look up a place by namespaced name."""
        return self._model.place(self.name(name))


def replicate(
    model: SANModel,
    builder: Callable[[Namespace, int], None],
    count: int,
    shared: Sequence[str] = (),
    prefix_format: str = "rep{index}.",
) -> List[Namespace]:
    """Stamp ``count`` copies of a builder into ``model``.

    Parameters
    ----------
    model:
        Target model.
    builder:
        ``(namespace, replica_index) -> None``; adds the submodel's
        places and activities through the namespace.
    count:
        Number of replicas (>= 1).
    shared:
        Place names shared across all replicas (Rep's shared state).
    prefix_format:
        Format string producing each replica's prefix from ``index``.

    Returns the namespaces, one per replica, for later lookups.
    """
    if count < 1:
        raise ModelDefinitionError(f"count must be >= 1, got {count}")
    shared_set = set(shared)
    namespaces: List[Namespace] = []
    seen_prefixes: Set[str] = set()
    for index in range(count):
        prefix = prefix_format.format(index=index)
        if prefix in seen_prefixes:
            raise ModelDefinitionError(
                f"prefix_format produced duplicate prefix {prefix!r}"
            )
        seen_prefixes.add(prefix)
        namespace = Namespace(model, prefix, shared_set)
        builder(namespace, index)
        namespaces.append(namespace)
    return namespaces
