"""Deterministic fault injection for the sweep runner.

The paper studies what happens when failures strike *during*
checkpointing; this module lets the test suite (and the CI smoke job)
do the same to the harness itself. A :class:`FaultPlan` is attached to
:class:`~repro.experiments.resilience.ResilienceOptions` and injects,
deterministically by point index and attempt number:

* **crashes** — the worker raises :class:`InjectedCrash` before
  simulating, exercising the retry/backoff path;
* **hangs** — the worker sleeps past the supervisor's point timeout,
  exercising hang detection and pool replacement;
* **aborts** — the supervisor raises :class:`SweepAborted` after the
  k-th completed point has been journaled, simulating the sweep
  process being killed mid-run (the resume path's test vector);

plus journal-corruption helpers (:func:`corrupt_journal_tail`,
:func:`corrupt_journal_line`, :func:`truncate_journal`) that model a
torn write or bit rot in the checkpoint file itself.

:class:`BackendFaultPlan` is the *backend-level* counterpart, applied
by :class:`~repro.resilience.backend.ResilientBackend` around every
evaluation attempt: raise / hang / slow / corrupt-result faults,
deterministic by evaluation key (a seed-free request digest, see
:func:`~repro.resilience.backend.evaluation_key`) and attempt number.
The ``repro chaos`` CLI subcommand runs a figure under one and
asserts the archive still matches a clean run.

Everything here is picklable: the plans ride into worker processes
inside the task arguments.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "BackendFaultPlan",
    "FaultPlan",
    "InjectedBackendFault",
    "InjectedCrash",
    "SweepAborted",
    "corrupt_journal_line",
    "corrupt_journal_tail",
    "truncate_journal",
]


class InjectedCrash(RuntimeError):
    """An artificial worker failure raised by a :class:`FaultPlan`."""


class InjectedBackendFault(RuntimeError):
    """An artificial backend failure raised by a :class:`BackendFaultPlan`."""


class SweepAborted(RuntimeError):
    """The supervisor was told to die mid-sweep (simulated kill)."""


@dataclass
class FaultPlan:
    """A deterministic schedule of injected faults.

    Attributes
    ----------
    crashes:
        ``point index -> attempts`` on which the worker raises
        :class:`InjectedCrash`.
    hangs:
        ``point index -> attempts`` on which the worker sleeps for
        ``hang_seconds`` before proceeding.
    hang_seconds:
        How long an injected hang sleeps. Pick it well above the
        supervisor's ``point_timeout`` to model a genuine hang, or
        below it to model a slow-but-successful point.
    abort_after:
        Raise :class:`SweepAborted` in the supervisor once this many
        points have completed (and been journaled) in the current run.
    """

    crashes: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    hangs: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    hang_seconds: float = 3600.0
    abort_after: Optional[int] = None

    # -- construction helpers (chainable) ------------------------------
    def crash(self, index: int, attempts: Sequence[int] = (0,)) -> "FaultPlan":
        """Crash the given point on the given attempt numbers."""
        self.crashes[index] = tuple(attempts)
        return self

    def hang(
        self,
        index: int,
        attempts: Sequence[int] = (0,),
        seconds: Optional[float] = None,
    ) -> "FaultPlan":
        """Hang the given point on the given attempt numbers."""
        self.hangs[index] = tuple(attempts)
        if seconds is not None:
            self.hang_seconds = float(seconds)
        return self

    def abort_after_points(self, count: int) -> "FaultPlan":
        """Kill the sweep after ``count`` completed points."""
        self.abort_after = int(count)
        return self

    # -- hooks ----------------------------------------------------------
    def before_point(self, index: int, attempt: int) -> None:
        """Worker-side hook, called before a point is simulated."""
        if attempt in self.hangs.get(index, ()):
            time.sleep(self.hang_seconds)
        if attempt in self.crashes.get(index, ()):
            raise InjectedCrash(
                f"injected crash at point {index}, attempt {attempt}"
            )

    def after_success(self, completed_count: int) -> None:
        """Supervisor-side hook, called after a point is journaled."""
        if self.abort_after is not None and completed_count >= self.abort_after:
            raise SweepAborted(
                f"injected abort after {completed_count} completed point(s)"
            )


def _unit_interval(token: str) -> float:
    """A deterministic value in ``[0, 1)`` hashed from ``token``."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2**64


@dataclass
class BackendFaultPlan:
    """A deterministic schedule of *backend-level* injected faults.

    Applied by :class:`~repro.resilience.backend.ResilientBackend`
    around each evaluation attempt via :meth:`before_evaluate` /
    :meth:`after_evaluate`. Whether a given evaluation is afflicted is
    decided by hashing ``(salt, fault kind, evaluation key)`` into
    ``[0, 1)`` and comparing against the configured fraction — the
    same request is afflicted identically in every run, every process,
    and (because the evaluation key excludes the seed) every retry
    attempt, while distinct requests are afflicted independently.

    Attributes
    ----------
    backend_id:
        Only afflict this backend id (``None`` afflicts every
        backend). Pinning the plan to the primary backend while the
        degradation chain falls back to an unafflicted one is how the
        chaos smoke stays value-preserving.
    crash_fraction / crash_attempts:
        Fraction of evaluations that raise
        :class:`InjectedBackendFault`, on the listed attempt numbers
        (``None`` = every attempt, the "permanently broken" shape that
        forces degradation).
    hang_fraction / hang_attempts / hang_seconds:
        Fraction of evaluations that sleep ``hang_seconds`` before
        evaluating — past the deadline this models a genuine hang the
        supervisor must kill; below it, a slow-but-successful call.
    slow_fraction / slow_seconds:
        Fraction of evaluations delayed by ``slow_seconds`` (latency
        injection that should *not* trip anything when the deadline is
        sized sanely).
    corrupt_fraction / corrupt_attempts / corrupt_factor:
        Fraction of evaluations whose *result* is corrupted: every
        metric mean is multiplied by ``corrupt_factor``. The result
        still reports success — only a downstream tolerance check can
        catch it, which is exactly what the chaos comparison is for.
    salt:
        Folded into every affliction hash; vary it to draw a different
        deterministic fault pattern at the same fractions.
    """

    backend_id: Optional[str] = None
    crash_fraction: float = 0.0
    crash_attempts: Optional[Tuple[int, ...]] = None
    hang_fraction: float = 0.0
    hang_attempts: Optional[Tuple[int, ...]] = None
    hang_seconds: float = 3600.0
    slow_fraction: float = 0.0
    slow_seconds: float = 0.0
    corrupt_fraction: float = 0.0
    corrupt_attempts: Optional[Tuple[int, ...]] = (0,)
    corrupt_factor: float = 10.0
    salt: str = ""

    def __post_init__(self) -> None:
        for name in ("crash_fraction", "hang_fraction", "slow_fraction",
                     "corrupt_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("crash_attempts", "hang_attempts", "corrupt_attempts"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, tuple(int(a) for a in value))

    # -- affliction decisions ------------------------------------------
    def _afflicted(self, kind: str, fraction: float, key: str) -> bool:
        if fraction <= 0.0:
            return False
        return _unit_interval(f"{self.salt}/{kind}/{key}") < fraction

    def _applies(self, backend_id: str, attempt: int,
                 attempts: Optional[Tuple[int, ...]]) -> bool:
        if self.backend_id is not None and backend_id != self.backend_id:
            return False
        return attempts is None or attempt in attempts

    # -- hooks ----------------------------------------------------------
    def before_evaluate(self, backend_id: str, key: str, attempt: int) -> None:
        """Pre-evaluation hook: inject latency, hangs and crashes.

        Runs *inside* the isolated child process when subprocess
        isolation is on, so an injected hang is killable exactly like
        a real one.
        """
        if (self._applies(backend_id, attempt, None)
                and self._afflicted("slow", self.slow_fraction, key)
                and self.slow_seconds > 0):
            time.sleep(self.slow_seconds)
        if (self._applies(backend_id, attempt, self.hang_attempts)
                and self._afflicted("hang", self.hang_fraction, key)):
            time.sleep(self.hang_seconds)
        if (self._applies(backend_id, attempt, self.crash_attempts)
                and self._afflicted("crash", self.crash_fraction, key)):
            raise InjectedBackendFault(
                f"injected backend crash on {backend_id!r} "
                f"(attempt {attempt}, key {key[:12]})"
            )

    def after_evaluate(self, backend_id: str, key: str, attempt: int, result):
        """Post-evaluation hook: corrupt the result's metric means."""
        if not (self._applies(backend_id, attempt, self.corrupt_attempts)
                and self._afflicted("corrupt", self.corrupt_fraction, key)):
            return result
        corrupted = {
            name: replace(value, mean=value.mean * self.corrupt_factor)
            for name, value in result.metrics.items()
        }
        result.metrics = corrupted
        result.notes = list(result.notes) + [
            f"injected result corruption (x{self.corrupt_factor:g})"
        ]
        return result


# ----------------------------------------------------------------------
# Journal corruption
# ----------------------------------------------------------------------
def corrupt_journal_tail(
    path: str, garbage: str = '{"kind": "point", "series": "tru'
) -> None:
    """Append a torn (half-written) record to a journal, as if the
    process died mid-append."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(garbage)


def corrupt_journal_line(path: str, line_index: int, garbage: str = "\x00garbage\x00") -> None:
    """Overwrite one journal line with garbage (bit rot)."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not 0 <= line_index < len(lines):
        raise IndexError(
            f"journal {path!r} has {len(lines)} lines; cannot corrupt line "
            f"{line_index}"
        )
    lines[line_index] = garbage
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def truncate_journal(path: str, keep_lines: int) -> None:
    """Drop all but the first ``keep_lines`` lines of a journal."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    kept = lines[:keep_lines]
    with open(path, "w", encoding="utf-8") as handle:
        for line in kept:
            handle.write(line + "\n")
