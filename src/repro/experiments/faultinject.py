"""Deterministic fault injection for the sweep runner.

The paper studies what happens when failures strike *during*
checkpointing; this module lets the test suite (and the CI smoke job)
do the same to the harness itself. A :class:`FaultPlan` is attached to
:class:`~repro.experiments.resilience.ResilienceOptions` and injects,
deterministically by point index and attempt number:

* **crashes** — the worker raises :class:`InjectedCrash` before
  simulating, exercising the retry/backoff path;
* **hangs** — the worker sleeps past the supervisor's point timeout,
  exercising hang detection and pool replacement;
* **aborts** — the supervisor raises :class:`SweepAborted` after the
  k-th completed point has been journaled, simulating the sweep
  process being killed mid-run (the resume path's test vector);

plus journal-corruption helpers (:func:`corrupt_journal_tail`,
:func:`corrupt_journal_line`, :func:`truncate_journal`) that model a
torn write or bit rot in the checkpoint file itself.

Everything here is picklable: the plan rides into worker processes
inside the task arguments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "FaultPlan",
    "InjectedCrash",
    "SweepAborted",
    "corrupt_journal_line",
    "corrupt_journal_tail",
    "truncate_journal",
]


class InjectedCrash(RuntimeError):
    """An artificial worker failure raised by a :class:`FaultPlan`."""


class SweepAborted(RuntimeError):
    """The supervisor was told to die mid-sweep (simulated kill)."""


@dataclass
class FaultPlan:
    """A deterministic schedule of injected faults.

    Attributes
    ----------
    crashes:
        ``point index -> attempts`` on which the worker raises
        :class:`InjectedCrash`.
    hangs:
        ``point index -> attempts`` on which the worker sleeps for
        ``hang_seconds`` before proceeding.
    hang_seconds:
        How long an injected hang sleeps. Pick it well above the
        supervisor's ``point_timeout`` to model a genuine hang, or
        below it to model a slow-but-successful point.
    abort_after:
        Raise :class:`SweepAborted` in the supervisor once this many
        points have completed (and been journaled) in the current run.
    """

    crashes: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    hangs: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    hang_seconds: float = 3600.0
    abort_after: Optional[int] = None

    # -- construction helpers (chainable) ------------------------------
    def crash(self, index: int, attempts: Sequence[int] = (0,)) -> "FaultPlan":
        """Crash the given point on the given attempt numbers."""
        self.crashes[index] = tuple(attempts)
        return self

    def hang(
        self,
        index: int,
        attempts: Sequence[int] = (0,),
        seconds: Optional[float] = None,
    ) -> "FaultPlan":
        """Hang the given point on the given attempt numbers."""
        self.hangs[index] = tuple(attempts)
        if seconds is not None:
            self.hang_seconds = float(seconds)
        return self

    def abort_after_points(self, count: int) -> "FaultPlan":
        """Kill the sweep after ``count`` completed points."""
        self.abort_after = int(count)
        return self

    # -- hooks ----------------------------------------------------------
    def before_point(self, index: int, attempt: int) -> None:
        """Worker-side hook, called before a point is simulated."""
        if attempt in self.hangs.get(index, ()):
            time.sleep(self.hang_seconds)
        if attempt in self.crashes.get(index, ()):
            raise InjectedCrash(
                f"injected crash at point {index}, attempt {attempt}"
            )

    def after_success(self, completed_count: int) -> None:
        """Supervisor-side hook, called after a point is journaled."""
        if self.abort_after is not None and completed_count >= self.abort_after:
            raise SweepAborted(
                f"injected abort after {completed_count} completed point(s)"
            )


# ----------------------------------------------------------------------
# Journal corruption
# ----------------------------------------------------------------------
def corrupt_journal_tail(
    path: str, garbage: str = '{"kind": "point", "series": "tru'
) -> None:
    """Append a torn (half-written) record to a journal, as if the
    process died mid-append."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(garbage)


def corrupt_journal_line(path: str, line_index: int, garbage: str = "\x00garbage\x00") -> None:
    """Overwrite one journal line with garbage (bit rot)."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not 0 <= line_index < len(lines):
        raise IndexError(
            f"journal {path!r} has {len(lines)} lines; cannot corrupt line "
            f"{line_index}"
        )
    lines[line_index] = garbage
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def truncate_journal(path: str, keep_lines: int) -> None:
    """Drop all but the first ``keep_lines`` lines of a journal."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    kept = lines[:keep_lines]
    with open(path, "w", encoding="utf-8") as handle:
        for line in kept:
            handle.write(line + "\n")
