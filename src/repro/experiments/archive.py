"""Result archival and regression comparison.

A reproduction repository needs its numbers to be *diffable*: this
module persists regenerated figures as JSON and compares two archives
(e.g. today's run vs the checked-in reference) within statistical
tolerance, so refactors can prove they did not move the results.

Layout: one ``<figure_id>.json`` per figure inside an archive
directory, written by :func:`save_figure` / :func:`save_archive` and
compared by :func:`compare_figures` / :func:`compare_archives`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional

from .._version import __version__
from ..obs import write_manifest
from .resilience import FailureReport
from .runner import FigureResult

__all__ = [
    "FIGURE_SCHEMA_VERSION",
    "save_figure",
    "load_figure",
    "save_archive",
    "load_archive",
    "Discrepancy",
    "compare_figures",
    "compare_archives",
]

#: Version of the figure-archive JSON schema. Version 1 is the
#: pre-backend layout (no ``schema_version`` stamp at all); version 2
#: adds ``schema_version``, ``repro_version`` and ``backend``.
FIGURE_SCHEMA_VERSION = 2


def save_figure(figure: FigureResult, directory: str) -> str:
    """Write one figure as ``<directory>/<figure_id>.json``; returns
    the path.

    The write is atomic: the JSON is rendered to a temporary file in
    the same directory, fsync'd, and :func:`os.replace`'d into place,
    so a crash mid-save leaves either the previous archive or the new
    one — never a truncated file.

    When the figure carries a run manifest (every figure produced by
    :func:`~repro.experiments.runner.run_sweep` or
    :func:`~repro.experiments.figures.run_figure` does), it is written
    alongside as ``<figure_id>.manifest.json`` with the same atomic
    discipline, so the archive and its provenance travel together.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{figure.figure_id}.json")
    payload = {
        "schema_version": FIGURE_SCHEMA_VERSION,
        "repro_version": __version__,
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_label": figure.x_label,
        "metric": figure.metric,
        "backend": figure.backend,
        "unvalidated_intervals": figure.unvalidated_intervals,
        "series": {
            label: [[x, y, h] for x, y, h in points]
            for label, points in figure.series.items()
        },
        "notes": list(figure.notes),
        "failures": [asdict(report) for report in figure.failures],
    }
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{figure.figure_id}.", suffix=".json.tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    if figure.manifest is not None:
        write_manifest(figure.manifest, directory)
    return path


def load_figure(path: str) -> FigureResult:
    """Read a figure written by :func:`save_figure`.

    Raises a :class:`ValueError` naming the offending path when the
    file is not valid JSON, lacks the expected structure, or was
    written under a *newer* archive schema than this package reads,
    so a corrupted or future archive is diagnosable instead of
    surfacing as a bare ``KeyError`` deep inside a comparison.

    Legacy archives (schema version 1, written before the stamp
    existed) are migrated on load: the figure gains a note recording
    the migration and a ``None`` backend.
    """
    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read()
    try:
        payload = json.loads(raw)
    except ValueError as exc:
        raise ValueError(f"malformed figure archive {path!r}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"malformed figure archive {path!r}: expected a JSON object, "
            f"got {type(payload).__name__}"
        )
    version = payload.get("schema_version", 1)
    if not isinstance(version, int) or version > FIGURE_SCHEMA_VERSION:
        raise ValueError(
            f"figure archive {path!r} has schema version {version!r}; this "
            f"package reads versions 1..{FIGURE_SCHEMA_VERSION} — it was "
            "likely written by a newer repro release"
        )
    try:
        figure = FigureResult(
            figure_id=payload["figure_id"],
            title=payload["title"],
            x_label=payload["x_label"],
            metric=payload["metric"],
            backend=payload.get("backend"),
            unvalidated_intervals=bool(
                payload.get("unvalidated_intervals", False)
            ),
        )
        for label, points in payload["series"].items():
            figure.series[label] = [
                (float(x), float(y), float(h)) for x, y, h in points
            ]
        figure.notes = list(payload.get("notes", []))
        figure.failures = [
            FailureReport(**report) for report in payload.get("failures", [])
        ]
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"malformed figure archive {path!r}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if version < FIGURE_SCHEMA_VERSION:
        figure.notes.append(
            f"migrated from archive schema version {version} "
            f"(current: {FIGURE_SCHEMA_VERSION}); no backend recorded"
        )
    return figure


def save_archive(figures: Iterable[FigureResult], directory: str) -> List[str]:
    """Write many figures; returns the written paths."""
    return [save_figure(figure, directory) for figure in figures]


def load_archive(directory: str) -> Dict[str, FigureResult]:
    """Read every ``*.json`` figure in a directory, keyed by id."""
    figures: Dict[str, FigureResult] = {}
    for name in sorted(os.listdir(directory)):
        if name.endswith(".manifest.json"):
            continue  # run manifests live beside figures, not in them
        if name.endswith(".json"):
            figure = load_figure(os.path.join(directory, name))
            figures[figure.figure_id] = figure
    return figures


@dataclass(frozen=True)
class Discrepancy:
    """One difference between two archives."""

    figure_id: str
    kind: str  # "missing-series", "missing-point", "value"
    detail: str

    def __str__(self) -> str:
        return f"{self.figure_id}: [{self.kind}] {self.detail}"


def compare_figures(
    reference: FigureResult,
    candidate: FigureResult,
    rel_tolerance: float = 0.15,
    use_half_widths: bool = True,
) -> List[Discrepancy]:
    """Differences between two regenerations of the same figure.

    A point agrees when the values differ by less than
    ``rel_tolerance`` relative to the reference, *or* (with
    ``use_half_widths``) when the two confidence intervals overlap —
    whichever is more permissive, since independent stochastic runs
    legitimately differ within their own error bars.

    The overlap escape hatch only applies when the intervals are
    *informative*: at least one half-width must be positive, and
    neither figure may be flagged ``unvalidated_intervals`` (the n=1
    case, where a half-width of 0 means "unknown", not "exact").
    Previously two single-replication runs whose values happened to
    match exactly — or an n=1 run compared against the paper — could
    claim statistical agreement from zero-width intervals; now such
    points must pass the plain relative tolerance.
    """
    if not 0 <= rel_tolerance:
        raise ValueError(f"rel_tolerance must be >= 0, got {rel_tolerance}")
    intervals_informative = not (
        reference.unvalidated_intervals or candidate.unvalidated_intervals
    )
    discrepancies: List[Discrepancy] = []
    fid = reference.figure_id
    for label, ref_points in reference.series.items():
        cand_points = candidate.series.get(label)
        if cand_points is None:
            discrepancies.append(
                Discrepancy(fid, "missing-series", f"candidate lacks {label!r}")
            )
            continue
        cand_by_x = {x: (y, h) for x, y, h in cand_points}
        for x, ref_y, ref_h in ref_points:
            if x not in cand_by_x:
                discrepancies.append(
                    Discrepancy(fid, "missing-point", f"{label!r} lacks x={x:g}")
                )
                continue
            cand_y, cand_h = cand_by_x[x]
            scale = max(abs(ref_y), 1e-12)
            within_tolerance = abs(cand_y - ref_y) <= rel_tolerance * scale
            intervals_overlap = (
                use_half_widths
                and intervals_informative
                and (ref_h > 0 or cand_h > 0)
                and abs(cand_y - ref_y) <= ref_h + cand_h
            )
            if not (within_tolerance or intervals_overlap):
                discrepancies.append(
                    Discrepancy(
                        fid,
                        "value",
                        f"{label!r} at x={x:g}: reference {ref_y:.6g} ± {ref_h:.2g}"
                        f" vs candidate {cand_y:.6g} ± {cand_h:.2g}",
                    )
                )
    return discrepancies


def compare_archives(
    reference_dir: str,
    candidate_dir: str,
    rel_tolerance: float = 0.15,
) -> List[Discrepancy]:
    """Compare every figure present in the reference archive."""
    reference = load_archive(reference_dir)
    candidate = load_archive(candidate_dir)
    discrepancies: List[Discrepancy] = []
    for figure_id, ref_figure in reference.items():
        cand_figure = candidate.get(figure_id)
        if cand_figure is None:
            discrepancies.append(
                Discrepancy(figure_id, "missing-series", "figure absent from candidate")
            )
            continue
        discrepancies.extend(
            compare_figures(ref_figure, cand_figure, rel_tolerance)
        )
    return discrepancies
