"""Fault-tolerant sweep execution: checkpoint journal + supervisor.

The paper this repository reproduces models systems that survive
failures by periodically persisting partial state; this module makes
the *harness itself* practice that discipline. It provides the three
pieces :func:`~repro.experiments.runner.run_sweep` composes:

* :class:`CheckpointJournal` — an append-only, fsync'd JSON-lines file
  holding one record per completed sweep point. An interrupted sweep
  resumes from its journal, simulating only the missing points; since
  every point's seed is derived from its position, the resumed figure
  is bit-identical to an uninterrupted run. Torn or corrupted tails
  (the harness-level analogue of a failure *during* checkpointing) are
  detected and truncated back to the last intact record.

* :class:`SweepSupervisor` — the retry/journal *policy* layer. It
  drives any :class:`~repro.exec.base.Executor` (serial, process
  pool, persistent queue — see :mod:`repro.exec`): each point is
  retried up to ``RetryPolicy.max_retries`` times with exponential
  backoff (each retry on a freshly derived seed stream so a poisoned
  sample path is not replayed), and a point that exhausts its retries
  is recorded as a structured :class:`FailureReport` instead of
  aborting the sweep. Hang detection and pool-death degradation live
  in the executors themselves.

* :class:`ResilienceOptions` / :class:`RetryPolicy` — the
  configuration threaded from the CLI (``--resume``, ``--retries``,
  ``--point-timeout``, ...) down to the executive.

Determinism contract: a point's outcome depends only on its
``(params, plan, seed)``; the seed of attempt ``k`` is a stable hash
of ``(base_seed, k)``. Scheduling, pool size, resume and injected
faults therefore never change the *values* of points that succeed.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..exec.base import Executor, ExecutorError
from ..exec.pool import PoolExecutor, shutdown_pool
from ..exec.serial import SerialExecutor
from ..exec.task import EvaluationTask, Outcome, TaskResult, failure_payload
from ..resilience.retry import RetryPolicy, derive_attempt_seed

__all__ = [
    "CheckpointError",
    "CheckpointJournal",
    "FailureReport",
    "JournalState",
    "ResilienceOptions",
    "RetryPolicy",
    "SupervisorResult",
    "SweepSupervisor",
    "derive_attempt_seed",
    "failure_payload",
]

#: Journal key of a point.
PointKey = Tuple[str, float]


class CheckpointError(RuntimeError):
    """The checkpoint journal cannot be used (fingerprint mismatch,
    unusable header, ...). Carries the journal path in the message."""


@dataclass
class FailureReport:
    """One sweep point that exhausted its retries.

    Attached to ``FigureResult.failures`` (and summarised into
    ``FigureResult.notes``) instead of aborting the sweep mid-run.
    """

    series: str
    x: float
    index: int
    attempts: int
    error_type: str
    error_message: str
    traceback: str = ""

    def summary(self) -> str:
        return (
            f"point {self.series!r} @ x={self.x:g} failed after "
            f"{self.attempts} attempt(s): {self.error_type}: {self.error_message}"
        )


@dataclass
class ResilienceOptions:
    """Sweep-level fault-tolerance configuration.

    Attributes
    ----------
    checkpoint_dir:
        Directory holding one ``<figure_id>.journal.jsonl`` per sweep.
        ``None`` disables checkpointing entirely.
    resume:
        When a journal exists, skip its completed points (default).
        ``False`` discards any existing journal and starts fresh.
    retry:
        The per-point retry/backoff policy.
    point_timeout:
        Wall-clock seconds one point attempt may run before the
        supervisor declares it hung. The pool executor enforces it
        preemptively (the hung worker is killed); in-process
        executors (serial, queue) enforce it cooperatively by
        tightening the simulation's wall-clock budget, which a note
        on the figure records.
    wall_clock_budget:
        Per-replication real-time budget forwarded into
        :class:`~repro.core.simulation.SimulationPlan`; a run that
        exceeds it raises inside the worker and goes through the
        normal retry path.
    fault_plan:
        Optional :class:`~repro.experiments.faultinject.FaultPlan`
        used by the tests and the CI smoke job to inject worker
        crashes, hangs and mid-sweep aborts deterministically.
    cache_dir:
        Root of a content-addressed
        :class:`~repro.backends.cache.ResultCache`. Every evaluated
        point is stored under its canonical request hash and re-used
        by later sweeps that request the identical evaluation —
        unlike the journal (scoped to one sweep configuration), the
        cache is shared across figures, seeds and runs. ``None``
        disables caching.
    backend_resilience:
        Optional
        :class:`~repro.resilience.backend.BackendResilienceOptions`;
        when set, every worker wraps its evaluation backend in a
        :class:`~repro.resilience.backend.ResilientBackend` (per-
        attempt deadlines, seed-deriving retries, circuit breaker,
        degradation chain, backend-level fault injection). Retried or
        degraded results are never written to the result cache — only
        what a clean run would produce may be reused.
    """

    checkpoint_dir: Optional[str] = None
    resume: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    point_timeout: Optional[float] = None
    wall_clock_budget: Optional[float] = None
    fault_plan: Optional[Any] = None
    cache_dir: Optional[str] = None
    backend_resilience: Optional[Any] = None


@dataclass
class JournalState:
    """What :meth:`CheckpointJournal.load` recovered."""

    outcomes: Dict[PointKey, Outcome] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)


class CheckpointJournal:
    """Append-only JSON-lines journal of completed sweep points.

    Layout: a ``header`` record carrying a fingerprint of the sweep
    configuration, followed by one ``point`` record per completed
    point. Every append is flushed and fsync'd, so after a crash the
    journal holds every completed point except, at worst, a torn final
    line — which :meth:`load` detects and truncates.
    """

    VERSION = 1

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(
        figure_id: str,
        metric: str,
        seed: int,
        plan: Any,
        point_signatures: Sequence[Tuple[str, float, str]],
        backend: str = "san-sim",
    ) -> str:
        """A stable digest of everything that determines point values.

        Two sweeps share a fingerprint iff resuming one from the
        other's journal is sound. Wall-clock budgets and retry
        policies are deliberately excluded: they affect *whether* a
        point completes, never its value. The event kernel is also
        excluded — the kernels are trajectory-preserving, so a journal
        written under one kernel resumes soundly under the other —
        but the evaluation *backend* is included: different backends
        legitimately produce different values for the same point.
        """
        import hashlib

        digest = hashlib.blake2b(digest_size=16)
        core = (
            figure_id,
            metric,
            int(seed),
            float(getattr(plan, "warmup", 0.0)),
            float(getattr(plan, "observation", 0.0)),
            int(getattr(plan, "replications", 1)),
            float(getattr(plan, "confidence", 0.95)),
        )
        if backend != "san-sim":
            # Appended conditionally so journals written before the
            # backend layer existed keep resuming under the default.
            core = core + (backend,)
        digest.update(repr(core).encode("utf-8"))
        for series, x, params_repr in point_signatures:
            digest.update(f"{series}\x00{x!r}\x00{params_repr}\n".encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Reading / recovery
    # ------------------------------------------------------------------
    def load(self, expected_fingerprint: str) -> JournalState:
        """Recover completed points from an existing journal.

        * No journal: empty state.
        * Unreadable or corrupt header: the journal is discarded (a
          torn first write left nothing recoverable) with a note.
        * Fingerprint mismatch: :class:`CheckpointError` — resuming a
          different configuration would silently mix results.
        * Corrupt line after a valid prefix: the prefix is kept, the
          file is atomically truncated back to it, and a note records
          how many records were dropped.
        """
        state = JournalState()
        if not os.path.exists(self.path):
            return state
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return state

        header: Optional[Dict[str, Any]] = None
        valid_lines: List[str] = []
        dropped = 0
        for position, line in enumerate(lines):
            record = self._parse_record(line)
            if record is None:
                dropped = len(lines) - position
                break
            if position == 0:
                if record.get("kind") != "header" or "fingerprint" not in record:
                    record = None
                    dropped = len(lines)
                    break
                header = record
            elif record.get("kind") == "point":
                state.outcomes[(record["series"], float(record["x"]))] = (
                    record["series"],
                    float(record["x"]),
                    float(record["mean"]),
                    float(record["half_width"]),
                )
            else:
                # Unknown record kind: treat as corruption from here on.
                dropped = len(lines) - position
                break
            valid_lines.append(line)

        if header is None:
            state.outcomes.clear()
            state.notes.append(
                f"checkpoint journal {self.path!r} had an unusable header; "
                "starting the sweep from scratch"
            )
            self.discard()
            return state
        if header["fingerprint"] != expected_fingerprint:
            raise CheckpointError(
                f"checkpoint journal {self.path!r} was written by a different "
                f"sweep configuration (journal fingerprint "
                f"{header['fingerprint']}, expected {expected_fingerprint}); "
                "pass resume=False (CLI: --no-resume) to discard it"
            )
        if dropped:
            state.notes.append(
                f"checkpoint journal {self.path!r}: dropped {dropped} corrupt "
                f"trailing line(s); kept {len(state.outcomes)} intact point(s)"
            )
            self._rewrite(valid_lines)
        return state

    @staticmethod
    def _parse_record(line: str) -> Optional[Dict[str, Any]]:
        line = line.strip()
        if not line:
            return None
        try:
            record = json.loads(line)
        except ValueError:
            return None
        if not isinstance(record, dict):
            return None
        if record.get("kind") == "point":
            required = ("series", "x", "mean", "half_width")
            if any(name not in record for name in required):
                return None
            if not isinstance(record["series"], str):
                return None
            try:
                float(record["x"]), float(record["mean"]), float(record["half_width"])
            except (TypeError, ValueError):
                return None
        return record

    def _rewrite(self, lines: Sequence[str]) -> None:
        """Atomically replace the journal with the given valid prefix."""
        directory = os.path.dirname(self.path) or "."
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".journal-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def begin(self, fingerprint: str, meta: Dict[str, Any]) -> None:
        """Open the journal for appending, writing a header if new."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            header = {"kind": "header", "version": self.VERSION,
                      "fingerprint": fingerprint}
            header.update(meta)
            self._append(header)

    def record_point(
        self,
        index: int,
        series: str,
        x: float,
        mean: float,
        half_width: float,
        attempt: int,
        seed_used: int,
    ) -> None:
        """Durably journal one completed point."""
        self._append(
            {
                "kind": "point",
                "index": index,
                "series": series,
                "x": x,
                "mean": mean,
                "half_width": half_width,
                "attempt": attempt,
                "seed_used": seed_used,
            }
        )

    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise CheckpointError(
                f"journal {self.path!r} is not open; call begin() first"
            )
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def discard(self) -> None:
        """Delete any existing journal file."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass
class SupervisorResult:
    """Everything a supervised execution produced.

    ``execution`` is the executor's ``stats()`` snapshot (executor
    id, tasks executed, coalesced count, ...) taken when the run
    finished; the runner folds it into the manifest's ``execution``
    section. ``None`` when no task needed executing.
    """

    outcomes: Dict[int, Outcome] = field(default_factory=dict)
    failures: List[FailureReport] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    attempts: Dict[int, int] = field(default_factory=dict)
    execution: Optional[Dict[str, Any]] = None


class _PendingQueue:
    """Retry-aware work queue: FIFO of ready entries plus a delayed
    set whose backoff deadlines have not passed yet."""

    def __init__(self, indices: Sequence[int]) -> None:
        self.ready: Deque[Tuple[int, int]] = deque((i, 0) for i in indices)
        self.delayed: List[Tuple[float, int, int]] = []

    def __bool__(self) -> bool:
        return bool(self.ready) or bool(self.delayed)

    def promote(self, now: float) -> None:
        """Move delayed entries whose deadline passed into the ready queue."""
        due = [entry for entry in self.delayed if entry[0] <= now]
        if due:
            self.delayed = [e for e in self.delayed if e[0] > now]
            for _, index, attempt in sorted(due):
                self.ready.append((index, attempt))

    def defer(self, index: int, attempt: int, not_before: float) -> None:
        self.delayed.append((not_before, index, attempt))

    def requeue_front(self, entries: Sequence[Tuple[int, int]]) -> None:
        for index, attempt in reversed(entries):
            self.ready.appendleft((index, attempt))

    def next_deadline(self) -> Optional[float]:
        return min((e[0] for e in self.delayed), default=None)


class SweepSupervisor:
    """Retry/journal policy driver: runs point tasks to completion
    over any executor.

    The supervisor owns *policy* — which attempt to run next, when a
    failed attempt may retry (exponential backoff on a fresh derived
    seed), when a point is declared failed for good — and delegates
    *mechanism* (processes, hang preemption, persistence, dedup) to
    an :class:`~repro.exec.base.Executor`.

    Parameters
    ----------
    options:
        The :class:`ResilienceOptions` in effect.
    processes:
        Worker process count used when no ``executor`` is passed:
        ``1`` builds a :class:`~repro.exec.serial.SerialExecutor`,
        ``>= 2`` a :class:`~repro.exec.pool.PoolExecutor`.
    on_success:
        Callback ``(task, outcome, attempt, seed_used) -> None`` fired
        (in the supervisor process) after each completed point —
        journal append, progress reporting and fault-plan abort hooks
        live there. Exceptions it raises propagate: an abort injected
        mid-sweep behaves exactly like the process being killed.
    clock / sleep / pool_factory:
        Injectable time source, sleep function and worker-pool
        constructor (defaults: ``time.monotonic``, ``time.sleep``,
        ``multiprocessing.Pool``), forwarded to a supervisor-built
        executor. Tests drive backoff and hang detection with a fake
        clock and stub pools so CI never depends on real
        ``time.sleep`` margins.
    run_task:
        Test seam: overrides the task-execution function of a
        supervisor-built executor (default
        :func:`~repro.exec.task.execute_task`).
    executor:
        A ready-made executor to drive instead of building one. The
        caller keeps ownership: the supervisor drains its results and
        notes but does not ``close()`` it.
    """

    def __init__(
        self,
        options: ResilienceOptions,
        processes: int = 1,
        on_success: Optional[
            Callable[[EvaluationTask, Outcome, int, int], None]
        ] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        pool_factory: Optional[Callable[[], Any]] = None,
        run_task: Optional[Callable[..., TaskResult]] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.options = options
        self.processes = max(1, processes)
        self.on_success = on_success
        self._clock = clock
        self._sleep = sleep
        self._pool_factory = pool_factory
        self._run_task = run_task
        self._executor = executor

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[EvaluationTask]) -> SupervisorResult:
        """Drive every task to success or exhausted retries."""
        result = SupervisorResult()
        if not tasks:
            return result
        by_index = {task.index: task for task in tasks}
        queue = _PendingQueue([task.index for task in tasks])

        executor = self._executor
        owns_executor = executor is None
        if owns_executor:
            executor = self._build_executor()
        if (
            self.options.point_timeout is not None
            and not executor.capabilities.preemptive_timeout
        ):
            result.notes.append(
                "point_timeout is enforced cooperatively (as a simulation "
                f"wall-clock budget) by the {executor.capabilities.name!r} "
                "executor; use the pool executor (processes >= 2) to "
                "preempt hung points"
            )
        try:
            self._drive(executor, queue, by_index, result)
        finally:
            result.execution = executor.stats()
            result.notes.extend(executor.notes)
            del executor.notes[:]
            if owns_executor:
                executor.close()
        return result

    def _build_executor(self) -> Executor:
        """The executor implied by ``processes`` (pool above 1)."""
        options = self.options
        if self.processes > 1:
            return PoolExecutor(
                processes=self.processes,
                point_timeout=options.point_timeout,
                fault_plan=options.fault_plan,
                backend_resilience=options.backend_resilience,
                clock=self._clock,
                sleep=self._sleep,
                pool_factory=self._pool_factory,
                run_task=self._run_task,
            )
        return SerialExecutor(
            point_timeout=options.point_timeout,
            fault_plan=options.fault_plan,
            backend_resilience=options.backend_resilience,
            run_task=self._run_task,
        )

    def _drive(
        self,
        executor: Executor,
        queue: _PendingQueue,
        by_index: Dict[int, EvaluationTask],
        result: SupervisorResult,
    ) -> None:
        """The submit/backoff/collect loop shared by every executor."""
        results_iter = None
        stalled = False
        while queue or executor.pending:
            now = self._clock()
            queue.promote(now)
            while queue.ready:
                index, attempt = queue.ready.popleft()
                executor.submit(by_index[index].with_attempt(attempt))
            if executor.pending == 0:
                deadline = queue.next_deadline()
                if deadline is not None:
                    self._sleep(max(0.0, deadline - now))
                continue
            if results_iter is None:
                results_iter = executor.drain()
            task_result = next(results_iter, None)
            if task_result is None:
                # The drain generator ended; recreate it for the work
                # submitted since. Two consecutive empty drains with
                # work still pending means the executor is stuck.
                results_iter = None
                if stalled:
                    raise ExecutorError(
                        f"executor {executor.capabilities.name!r} reports "
                        f"{executor.pending} pending task(s) but its drain "
                        "yields nothing"
                    )
                stalled = True
                continue
            stalled = False
            task = by_index.get(task_result.index)
            if task is None:
                continue  # not ours (shared persistent queue)
            if task_result.ok:
                self._record_success(
                    task, task_result.outcome, task_result.attempt, result
                )
            else:
                self._record_attempt_failure(
                    task,
                    task_result.attempt,
                    task_result.failure or {},
                    queue,
                    result,
                    self._clock(),
                )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record_success(
        self,
        task: EvaluationTask,
        outcome: Outcome,
        attempt: int,
        result: SupervisorResult,
    ) -> None:
        result.outcomes[task.index] = outcome
        result.attempts[task.index] = attempt + 1
        if self.on_success is not None:
            self.on_success(
                task, outcome, attempt, derive_attempt_seed(task.base_seed, attempt)
            )

    def _record_attempt_failure(
        self,
        task: EvaluationTask,
        attempt: int,
        payload: Dict[str, str],
        queue: _PendingQueue,
        result: SupervisorResult,
        now: float,
    ) -> None:
        retry = self.options.retry
        if attempt < retry.max_retries:
            next_attempt = attempt + 1
            queue.defer(task.index, next_attempt, now + retry.delay_for(next_attempt))
        else:
            result.attempts[task.index] = attempt + 1
            result.failures.append(
                FailureReport(
                    series=task.series,
                    x=float(task.x),
                    index=task.index,
                    attempts=attempt + 1,
                    error_type=payload.get("error_type", "Exception"),
                    error_message=payload.get("error_message", ""),
                    traceback=payload.get("traceback", ""),
                )
            )

    #: Kept under its historical name: pool shutdown-error semantics
    #: are pinned by the tier-1 tests through this alias.
    _shutdown_pool = staticmethod(shutdown_pool)
