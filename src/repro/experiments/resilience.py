"""Fault-tolerant sweep execution: checkpoint journal + supervisor.

The paper this repository reproduces models systems that survive
failures by periodically persisting partial state; this module makes
the *harness itself* practice that discipline. It provides the three
pieces :func:`~repro.experiments.runner.run_sweep` composes:

* :class:`CheckpointJournal` — an append-only, fsync'd JSON-lines file
  holding one record per completed sweep point. An interrupted sweep
  resumes from its journal, simulating only the missing points; since
  every point's seed is derived from its position, the resumed figure
  is bit-identical to an uninterrupted run. Torn or corrupted tails
  (the harness-level analogue of a failure *during* checkpointing) are
  detected and truncated back to the last intact record.

* :class:`SweepSupervisor` — replaces the bare ``pool.imap`` loop.
  Each point runs under an optional wall-clock timeout, is retried up
  to ``RetryPolicy.max_retries`` times with exponential backoff (each
  retry on a freshly derived seed stream so a poisoned sample path is
  not replayed), and a point that exhausts its retries is recorded as
  a structured :class:`FailureReport` instead of aborting the sweep.
  If the worker pool itself dies, execution degrades to serial.

* :class:`ResilienceOptions` / :class:`RetryPolicy` — the
  configuration threaded from the CLI (``--resume``, ``--retries``,
  ``--point-timeout``, ...) down to the executive.

Determinism contract: a point's outcome depends only on its
``(params, plan, seed)``; the seed of attempt ``k`` is a stable hash
of ``(base_seed, k)``. Scheduling, pool size, resume and injected
faults therefore never change the *values* of points that succeed.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import tempfile
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics
from ..resilience.retry import RetryPolicy, derive_attempt_seed

__all__ = [
    "CheckpointError",
    "CheckpointJournal",
    "FailureReport",
    "JournalState",
    "PointTask",
    "ResilienceOptions",
    "RetryPolicy",
    "SupervisorResult",
    "SweepSupervisor",
    "derive_attempt_seed",
    "failure_payload",
]

#: A point outcome as journaled and assembled: (series, x, mean, half_width).
Outcome = Tuple[str, float, float, float]
#: Journal key of a point.
PointKey = Tuple[str, float]


class CheckpointError(RuntimeError):
    """The checkpoint journal cannot be used (fingerprint mismatch,
    unusable header, ...). Carries the journal path in the message."""


def failure_payload(exc: BaseException) -> Dict[str, str]:
    """Serialise an exception for transport out of a worker process."""
    return {
        "error_type": type(exc).__name__,
        "error_message": str(exc),
        "traceback": traceback.format_exc(),
    }


@dataclass
class FailureReport:
    """One sweep point that exhausted its retries.

    Attached to ``FigureResult.failures`` (and summarised into
    ``FigureResult.notes``) instead of aborting the sweep mid-run.
    """

    series: str
    x: float
    index: int
    attempts: int
    error_type: str
    error_message: str
    traceback: str = ""

    def summary(self) -> str:
        return (
            f"point {self.series!r} @ x={self.x:g} failed after "
            f"{self.attempts} attempt(s): {self.error_type}: {self.error_message}"
        )


@dataclass
class ResilienceOptions:
    """Sweep-level fault-tolerance configuration.

    Attributes
    ----------
    checkpoint_dir:
        Directory holding one ``<figure_id>.journal.jsonl`` per sweep.
        ``None`` disables checkpointing entirely.
    resume:
        When a journal exists, skip its completed points (default).
        ``False`` discards any existing journal and starts fresh.
    retry:
        The per-point retry/backoff policy.
    point_timeout:
        Wall-clock seconds one point attempt may run before the
        supervisor declares it hung. Enforced only with worker
        processes (a hung in-process call cannot be preempted); a
        serial sweep records a note instead.
    wall_clock_budget:
        Per-replication real-time budget forwarded into
        :class:`~repro.core.simulation.SimulationPlan`; a run that
        exceeds it raises inside the worker and goes through the
        normal retry path.
    fault_plan:
        Optional :class:`~repro.experiments.faultinject.FaultPlan`
        used by the tests and the CI smoke job to inject worker
        crashes, hangs and mid-sweep aborts deterministically.
    cache_dir:
        Root of a content-addressed
        :class:`~repro.backends.cache.ResultCache`. Every evaluated
        point is stored under its canonical request hash and re-used
        by later sweeps that request the identical evaluation —
        unlike the journal (scoped to one sweep configuration), the
        cache is shared across figures, seeds and runs. ``None``
        disables caching.
    backend_resilience:
        Optional
        :class:`~repro.resilience.backend.BackendResilienceOptions`;
        when set, every worker wraps its evaluation backend in a
        :class:`~repro.resilience.backend.ResilientBackend` (per-
        attempt deadlines, seed-deriving retries, circuit breaker,
        degradation chain, backend-level fault injection). Retried or
        degraded results are never written to the result cache — only
        what a clean run would produce may be reused.
    """

    checkpoint_dir: Optional[str] = None
    resume: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    point_timeout: Optional[float] = None
    wall_clock_budget: Optional[float] = None
    fault_plan: Optional[Any] = None
    cache_dir: Optional[str] = None
    backend_resilience: Optional[Any] = None


@dataclass(frozen=True)
class PointTask:
    """One unit of supervised work: a sweep point still to simulate.

    ``args`` is the picklable prefix of the worker's argument tuple;
    the supervisor appends ``(seed, index, attempt, fault_plan)``.
    """

    index: int
    series: str
    x: float
    base_seed: int
    args: Tuple[Any, ...]

    @property
    def key(self) -> PointKey:
        return (self.series, self.x)


@dataclass
class JournalState:
    """What :meth:`CheckpointJournal.load` recovered."""

    outcomes: Dict[PointKey, Outcome] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)


class CheckpointJournal:
    """Append-only JSON-lines journal of completed sweep points.

    Layout: a ``header`` record carrying a fingerprint of the sweep
    configuration, followed by one ``point`` record per completed
    point. Every append is flushed and fsync'd, so after a crash the
    journal holds every completed point except, at worst, a torn final
    line — which :meth:`load` detects and truncates.
    """

    VERSION = 1

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(
        figure_id: str,
        metric: str,
        seed: int,
        plan: Any,
        point_signatures: Sequence[Tuple[str, float, str]],
        backend: str = "san-sim",
    ) -> str:
        """A stable digest of everything that determines point values.

        Two sweeps share a fingerprint iff resuming one from the
        other's journal is sound. Wall-clock budgets and retry
        policies are deliberately excluded: they affect *whether* a
        point completes, never its value. The event kernel is also
        excluded — the kernels are trajectory-preserving, so a journal
        written under one kernel resumes soundly under the other —
        but the evaluation *backend* is included: different backends
        legitimately produce different values for the same point.
        """
        import hashlib

        digest = hashlib.blake2b(digest_size=16)
        core = (
            figure_id,
            metric,
            int(seed),
            float(getattr(plan, "warmup", 0.0)),
            float(getattr(plan, "observation", 0.0)),
            int(getattr(plan, "replications", 1)),
            float(getattr(plan, "confidence", 0.95)),
        )
        if backend != "san-sim":
            # Appended conditionally so journals written before the
            # backend layer existed keep resuming under the default.
            core = core + (backend,)
        digest.update(repr(core).encode("utf-8"))
        for series, x, params_repr in point_signatures:
            digest.update(f"{series}\x00{x!r}\x00{params_repr}\n".encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Reading / recovery
    # ------------------------------------------------------------------
    def load(self, expected_fingerprint: str) -> JournalState:
        """Recover completed points from an existing journal.

        * No journal: empty state.
        * Unreadable or corrupt header: the journal is discarded (a
          torn first write left nothing recoverable) with a note.
        * Fingerprint mismatch: :class:`CheckpointError` — resuming a
          different configuration would silently mix results.
        * Corrupt line after a valid prefix: the prefix is kept, the
          file is atomically truncated back to it, and a note records
          how many records were dropped.
        """
        state = JournalState()
        if not os.path.exists(self.path):
            return state
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return state

        header: Optional[Dict[str, Any]] = None
        valid_lines: List[str] = []
        dropped = 0
        for position, line in enumerate(lines):
            record = self._parse_record(line)
            if record is None:
                dropped = len(lines) - position
                break
            if position == 0:
                if record.get("kind") != "header" or "fingerprint" not in record:
                    record = None
                    dropped = len(lines)
                    break
                header = record
            elif record.get("kind") == "point":
                state.outcomes[(record["series"], float(record["x"]))] = (
                    record["series"],
                    float(record["x"]),
                    float(record["mean"]),
                    float(record["half_width"]),
                )
            else:
                # Unknown record kind: treat as corruption from here on.
                dropped = len(lines) - position
                break
            valid_lines.append(line)

        if header is None:
            state.outcomes.clear()
            state.notes.append(
                f"checkpoint journal {self.path!r} had an unusable header; "
                "starting the sweep from scratch"
            )
            self.discard()
            return state
        if header["fingerprint"] != expected_fingerprint:
            raise CheckpointError(
                f"checkpoint journal {self.path!r} was written by a different "
                f"sweep configuration (journal fingerprint "
                f"{header['fingerprint']}, expected {expected_fingerprint}); "
                "pass resume=False (CLI: --no-resume) to discard it"
            )
        if dropped:
            state.notes.append(
                f"checkpoint journal {self.path!r}: dropped {dropped} corrupt "
                f"trailing line(s); kept {len(state.outcomes)} intact point(s)"
            )
            self._rewrite(valid_lines)
        return state

    @staticmethod
    def _parse_record(line: str) -> Optional[Dict[str, Any]]:
        line = line.strip()
        if not line:
            return None
        try:
            record = json.loads(line)
        except ValueError:
            return None
        if not isinstance(record, dict):
            return None
        if record.get("kind") == "point":
            required = ("series", "x", "mean", "half_width")
            if any(name not in record for name in required):
                return None
            if not isinstance(record["series"], str):
                return None
            try:
                float(record["x"]), float(record["mean"]), float(record["half_width"])
            except (TypeError, ValueError):
                return None
        return record

    def _rewrite(self, lines: Sequence[str]) -> None:
        """Atomically replace the journal with the given valid prefix."""
        directory = os.path.dirname(self.path) or "."
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".journal-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for line in lines:
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def begin(self, fingerprint: str, meta: Dict[str, Any]) -> None:
        """Open the journal for appending, writing a header if new."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            header = {"kind": "header", "version": self.VERSION,
                      "fingerprint": fingerprint}
            header.update(meta)
            self._append(header)

    def record_point(
        self,
        index: int,
        series: str,
        x: float,
        mean: float,
        half_width: float,
        attempt: int,
        seed_used: int,
    ) -> None:
        """Durably journal one completed point."""
        self._append(
            {
                "kind": "point",
                "index": index,
                "series": series,
                "x": x,
                "mean": mean,
                "half_width": half_width,
                "attempt": attempt,
                "seed_used": seed_used,
            }
        )

    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise CheckpointError(
                f"journal {self.path!r} is not open; call begin() first"
            )
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def discard(self) -> None:
        """Delete any existing journal file."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass
class SupervisorResult:
    """Everything a supervised execution produced."""

    outcomes: Dict[int, Outcome] = field(default_factory=dict)
    failures: List[FailureReport] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    attempts: Dict[int, int] = field(default_factory=dict)


class _PendingQueue:
    """Retry-aware work queue: FIFO of ready entries plus a delayed
    set whose backoff deadlines have not passed yet."""

    def __init__(self, indices: Sequence[int]) -> None:
        self.ready: Deque[Tuple[int, int]] = deque((i, 0) for i in indices)
        self.delayed: List[Tuple[float, int, int]] = []

    def __bool__(self) -> bool:
        return bool(self.ready) or bool(self.delayed)

    def promote(self, now: float) -> None:
        """Move delayed entries whose deadline passed into the ready queue."""
        due = [entry for entry in self.delayed if entry[0] <= now]
        if due:
            self.delayed = [e for e in self.delayed if e[0] > now]
            for _, index, attempt in sorted(due):
                self.ready.append((index, attempt))

    def defer(self, index: int, attempt: int, not_before: float) -> None:
        self.delayed.append((not_before, index, attempt))

    def requeue_front(self, entries: Sequence[Tuple[int, int]]) -> None:
        for index, attempt in reversed(entries):
            self.ready.appendleft((index, attempt))

    def next_deadline(self) -> Optional[float]:
        return min((e[0] for e in self.delayed), default=None)


class SweepSupervisor:
    """Runs point tasks to completion under failures, hangs and pool
    death.

    Parameters
    ----------
    worker:
        A picklable module-level callable invoked as
        ``worker(*task.args, seed, task.index, attempt, fault_plan)``
        returning ``("ok", outcome)`` or ``("error", payload)`` (see
        :func:`failure_payload`). Workers catch their own exceptions
        so nothing un-picklable ever crosses the process boundary.
    options:
        The :class:`ResilienceOptions` in effect.
    processes:
        Worker process count; ``1`` executes in-process (serial).
    on_success:
        Callback ``(task, outcome, attempt, seed_used) -> None`` fired
        (in the supervisor process) after each completed point —
        journal append, progress reporting and fault-plan abort hooks
        live there. Exceptions it raises propagate: an abort injected
        mid-sweep behaves exactly like the process being killed.
    clock / sleep / pool_factory:
        Injectable time source, sleep function and worker-pool
        constructor (defaults: ``time.monotonic``, ``time.sleep``,
        ``multiprocessing.Pool``). Tests drive backoff and hang
        detection with a fake clock and stub pools so CI never
        depends on real ``time.sleep`` margins.
    """

    def __init__(
        self,
        worker: Callable[..., Tuple[str, Any]],
        options: ResilienceOptions,
        processes: int = 1,
        on_success: Optional[Callable[[PointTask, Outcome, int, int], None]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        pool_factory: Optional[Callable[[], Any]] = None,
    ) -> None:
        self.worker = worker
        self.options = options
        self.processes = max(1, processes)
        self.on_success = on_success
        self._clock = clock
        self._sleep = sleep
        self._pool_factory = pool_factory or (
            lambda: multiprocessing.Pool(self.processes)
        )

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[PointTask]) -> SupervisorResult:
        result = SupervisorResult()
        if not tasks:
            return result
        by_index = {task.index: task for task in tasks}
        queue = _PendingQueue([task.index for task in tasks])

        if self.processes > 1:
            self._run_pooled(queue, by_index, result)
        else:
            if self.options.point_timeout is not None:
                result.notes.append(
                    "point_timeout is not enforceable in serial execution; "
                    "pass processes >= 2 to supervise hung points"
                )
            self._run_serial(queue, by_index, result)
        return result

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def _worker_args(self, task: PointTask, attempt: int) -> Tuple[Any, ...]:
        seed = derive_attempt_seed(task.base_seed, attempt)
        return task.args + (seed, task.index, attempt, self.options.fault_plan)

    def _record_success(
        self,
        task: PointTask,
        outcome: Outcome,
        attempt: int,
        result: SupervisorResult,
    ) -> None:
        result.outcomes[task.index] = outcome
        result.attempts[task.index] = attempt + 1
        if self.on_success is not None:
            self.on_success(
                task, outcome, attempt, derive_attempt_seed(task.base_seed, attempt)
            )

    def _record_attempt_failure(
        self,
        task: PointTask,
        attempt: int,
        payload: Dict[str, str],
        queue: _PendingQueue,
        result: SupervisorResult,
        now: float,
    ) -> None:
        retry = self.options.retry
        if attempt < retry.max_retries:
            next_attempt = attempt + 1
            queue.defer(task.index, next_attempt, now + retry.delay_for(next_attempt))
        else:
            result.attempts[task.index] = attempt + 1
            result.failures.append(
                FailureReport(
                    series=task.series,
                    x=task.x,
                    index=task.index,
                    attempts=attempt + 1,
                    error_type=payload.get("error_type", "Exception"),
                    error_message=payload.get("error_message", ""),
                    traceback=payload.get("traceback", ""),
                )
            )

    # ------------------------------------------------------------------
    # Serial execution
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        queue: _PendingQueue,
        by_index: Dict[int, PointTask],
        result: SupervisorResult,
    ) -> None:
        while queue:
            now = self._clock()
            queue.promote(now)
            if not queue.ready:
                deadline = queue.next_deadline()
                if deadline is not None:
                    self._sleep(max(0.0, deadline - now))
                continue
            index, attempt = queue.ready.popleft()
            task = by_index[index]
            status, payload = self.worker(*self._worker_args(task, attempt))
            if status == "ok":
                self._record_success(task, payload, attempt, result)
            else:
                self._record_attempt_failure(
                    task, attempt, payload, queue, result, self._clock()
                )

    # ------------------------------------------------------------------
    # Pooled execution
    # ------------------------------------------------------------------
    def _run_pooled(
        self,
        queue: _PendingQueue,
        by_index: Dict[int, PointTask],
        result: SupervisorResult,
    ) -> None:
        try:
            pool = self._pool_factory()
        except Exception as exc:
            result.notes.append(
                f"could not start worker pool ({type(exc).__name__}: {exc}); "
                "degrading to serial execution"
            )
            self._run_serial(queue, by_index, result)
            return

        # inflight: (index, attempt, AsyncResult, submit_time), FIFO.
        inflight: Deque[Tuple[int, int, Any, float]] = deque()
        timeout = self.options.point_timeout
        try:
            while queue or inflight:
                now = self._clock()
                queue.promote(now)
                try:
                    while queue.ready and len(inflight) < self.processes:
                        index, attempt = queue.ready.popleft()
                        task = by_index[index]
                        async_result = pool.apply_async(
                            self.worker, self._worker_args(task, attempt)
                        )
                        inflight.append((index, attempt, async_result, now))
                except Exception as exc:
                    queue.requeue_front(
                        [(index, attempt)]
                        + [(i, a) for i, a, _, _ in inflight]
                    )
                    inflight.clear()
                    result.notes.append(
                        f"worker pool died ({type(exc).__name__}: {exc}); "
                        "degrading to serial execution"
                    )
                    self._shutdown_pool(pool, notes=result.notes)
                    pool = None
                    self._run_serial(queue, by_index, result)
                    return

                if not inflight:
                    deadline = queue.next_deadline()
                    if deadline is not None:
                        self._sleep(max(0.0, deadline - self._clock()))
                    continue

                index, attempt, async_result, submitted = inflight[0]
                task = by_index[index]
                try:
                    if timeout is not None:
                        remaining = submitted + timeout - self._clock()
                        async_result.wait(max(0.0, remaining))
                        if not async_result.ready():
                            # Hung worker: the pool slot is lost. Kill the
                            # pool, put the other in-flight points back, and
                            # retry the hung point on a fresh pool.
                            inflight.popleft()
                            queue.requeue_front(
                                [(i, a) for i, a, _, _ in inflight]
                            )
                            inflight.clear()
                            self._record_attempt_failure(
                                task,
                                attempt,
                                {
                                    "error_type": "PointTimeout",
                                    "error_message": (
                                        f"no result within {timeout:g} s "
                                        f"(attempt {attempt + 1})"
                                    ),
                                },
                                queue,
                                result,
                                self._clock(),
                            )
                            self._shutdown_pool(
                                pool, terminate=True, notes=result.notes
                            )
                            pool = self._pool_factory()
                            continue
                    status, payload = async_result.get()
                except Exception as exc:
                    # The pool infrastructure itself failed (workers never
                    # raise through the protocol). Fall back to serial.
                    queue.requeue_front(
                        [(i, a) for i, a, _, _ in inflight]
                    )
                    inflight.clear()
                    result.notes.append(
                        f"worker pool died ({type(exc).__name__}: {exc}); "
                        "degrading to serial execution"
                    )
                    self._shutdown_pool(
                        pool, terminate=True, notes=result.notes
                    )
                    pool = None
                    self._run_serial(queue, by_index, result)
                    return

                inflight.popleft()
                if status == "ok":
                    self._record_success(task, payload, attempt, result)
                else:
                    self._record_attempt_failure(
                        task, attempt, payload, queue, result, self._clock()
                    )
        finally:
            if pool is not None:
                self._shutdown_pool(pool, terminate=True, notes=result.notes)

    @staticmethod
    def _shutdown_pool(
        pool: Any,
        terminate: bool = False,
        notes: Optional[List[str]] = None,
    ) -> None:
        """Close or terminate the worker pool and join it.

        A cleanup failure used to be ``except Exception: pass``, which
        masked pool-infrastructure faults entirely. Now it is counted
        (``sweep.pool_shutdown_errors``), recorded in ``notes``, and —
        when no prior exception is already propagating — re-raised, so
        a shutdown failure only stays quiet while a more primary error
        is in flight (where raising would replace that error).
        """
        prior_error_in_flight = sys.exc_info()[0] is not None
        try:
            if terminate:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        except Exception as exc:
            obs_metrics.registry().counter("sweep.pool_shutdown_errors").inc()
            message = (
                f"worker pool shutdown failed: {type(exc).__name__}: {exc}"
            )
            if notes is not None:
                notes.append(message)
            if not prior_error_in_flight:
                raise
