"""Sweep execution.

A *sweep* is a list of points, each a full model configuration; the
runner simulates every point (serially, or across worker processes
when the machine has them) and returns a :class:`FigureResult` shaped
like the paper's plot: an x-grid and one series of y-values per curve.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.parameters import ModelParameters
from ..core.simulation import SimulationPlan, SimulationResult, simulate

__all__ = ["SweepPoint", "FigureResult", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One simulated point of a figure.

    Attributes
    ----------
    series:
        The curve this point belongs to (legend label).
    x:
        The x-axis value the paper plots.
    params:
        The model configuration to simulate.
    """

    series: str
    x: float
    params: ModelParameters


@dataclass
class FigureResult:
    """One regenerated figure.

    ``series`` maps a curve label to ``[(x, y, half_width), ...]``
    sorted by x. ``metric`` names the y-axis ("total_useful_work" or
    "useful_work_fraction").
    """

    figure_id: str
    title: str
    x_label: str
    metric: str
    series: Dict[str, List[Tuple[float, float, float]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def y_values(self, label: str) -> List[float]:
        """The y series of one curve (sorted by x)."""
        return [y for _, y, _ in self.series[label]]

    def x_values(self, label: str) -> List[float]:
        """The x grid of one curve."""
        return [x for x, _, _ in self.series[label]]

    def peak_x(self, label: str) -> float:
        """The x at which a curve attains its maximum."""
        points = self.series[label]
        return max(points, key=lambda p: p[1])[0]


def _simulate_point(
    args: Tuple[SweepPoint, SimulationPlan, int]
) -> Tuple[str, float, float, float]:
    point, plan, seed = args
    result = simulate(point.params, plan, seed=seed)
    metric_value = result.useful_work_fraction
    return (
        point.series,
        point.x,
        metric_value.mean,
        metric_value.half_width,
    )


def run_sweep(
    figure_id: str,
    title: str,
    x_label: str,
    metric: str,
    points: Sequence[SweepPoint],
    plan: SimulationPlan,
    seed: int = 0,
    processes: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FigureResult:
    """Simulate every point and assemble the figure.

    ``metric`` selects the reported y value: ``"useful_work_fraction"``
    or ``"total_useful_work"`` (the latter scales the fraction by the
    point's processor count). Point ``i`` uses seed ``seed + i`` so a
    sweep is reproducible and points are independent.
    """
    if metric not in ("useful_work_fraction", "total_useful_work"):
        raise ValueError(f"unknown metric {metric!r}")
    tasks = [(point, plan, seed + index) for index, point in enumerate(points)]
    outcomes: List[Tuple[str, float, float, float]] = []
    worker_count = processes if processes is not None else 1
    if worker_count > 1:
        with multiprocessing.Pool(worker_count) as pool:
            for index, outcome in enumerate(pool.imap(_simulate_point, tasks)):
                outcomes.append(outcome)
                if progress:
                    progress(index + 1, len(tasks))
    else:
        for index, task in enumerate(tasks):
            outcomes.append(_simulate_point(task))
            if progress:
                progress(index + 1, len(tasks))

    figure = FigureResult(figure_id, title, x_label, metric)
    scale = {point.series + "@" + repr(float(point.x)): point.params.n_processors
             for point in points}
    for label, x, mean, half_width in outcomes:
        if metric == "total_useful_work":
            factor = scale[label + "@" + repr(float(x))]
            entry = (x, mean * factor, half_width * factor)
        else:
            entry = (x, mean, half_width)
        figure.series.setdefault(label, []).append(entry)
    for label in figure.series:
        figure.series[label].sort(key=lambda p: p[0])
    return figure
