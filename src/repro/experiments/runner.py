"""Sweep execution.

A *sweep* is a list of points, each a full model configuration; the
runner evaluates every point (serially, or across worker processes
when the machine has them) through a named evaluation backend (see
:mod:`repro.backends`; the default is the full SAN simulation) and
returns a :class:`FigureResult` shaped like the paper's plot: an
x-grid and one series of y-values per curve.

Execution is fault tolerant (see :mod:`repro.experiments.resilience`):
with a ``checkpoint_dir`` every completed point is journaled and an
interrupted sweep resumes bit-identically; failed or hung points are
retried with exponential backoff and, if they never succeed, reported
as structured :class:`~repro.experiments.resilience.FailureReport`
entries on the figure instead of aborting the other points. With a
``cache_dir`` every evaluated point is also stored in a
content-addressed :class:`~repro.backends.cache.ResultCache`, so a
repeated or resumed sweep re-uses identical points *across runs* —
a warm cache re-runs a completed figure with zero new evaluations.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..backends import (
    DERIVED_METRICS,
    EvaluationPlan,
    ResultCache,
    UnsupportedMetricError,
    UnsupportedParametersError,
    all_backends,
    get_backend,
)
from ..core.parameters import ModelParameters
from ..core.simulation import SimulationPlan
from ..exec import EvaluationTask, Executor, make_executor
from ..obs import RunManifest, metrics as obs_metrics
from ..obs.trace import JsonlTraceSink, default_sink
from ..san import profiling
from .resilience import (
    CheckpointJournal,
    FailureReport,
    Outcome,
    ResilienceOptions,
    SupervisorResult,
    SweepSupervisor,
)

__all__ = [
    "SweepPoint",
    "FigureResult",
    "run_sweep",
    "sweep_eval_plan",
    "build_sweep_tasks",
    "DEFAULT_BACKEND",
]

#: Backend a sweep uses unless told otherwise (the paper's primary
#: evaluation path).
DEFAULT_BACKEND = "san-sim"


@dataclass(frozen=True)
class SweepPoint:
    """One simulated point of a figure.

    Attributes
    ----------
    series:
        The curve this point belongs to (legend label).
    x:
        The x-axis value the paper plots.
    params:
        The model configuration to simulate.
    """

    series: str
    x: float
    params: ModelParameters


@dataclass
class FigureResult:
    """One regenerated figure.

    ``series`` maps a curve label to ``[(x, y, half_width), ...]``
    sorted by x. ``metric`` names the y-axis ("total_useful_work" or
    "useful_work_fraction"). ``backend`` records which evaluation
    backend produced the series (``None`` for pre-backend archives).
    ``failures`` lists points that exhausted their retries (also
    summarised in ``notes``); their entries are absent from
    ``series``.

    ``unvalidated_intervals`` is True when the half-widths carry no
    statistical information (a stochastic backend ran with fewer than
    two replications): archive comparison must not claim interval
    overlap from them. ``manifest`` is the run's provenance record
    (see :class:`repro.obs.RunManifest`), written next to the archive
    by :func:`repro.experiments.archive.save_figure`.
    """

    figure_id: str
    title: str
    x_label: str
    metric: str
    series: Dict[str, List[Tuple[float, float, float]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    failures: List[FailureReport] = field(default_factory=list)
    backend: Optional[str] = None
    unvalidated_intervals: bool = False
    manifest: Optional[RunManifest] = None

    def y_values(self, label: str) -> List[float]:
        """The y series of one curve (sorted by x)."""
        return [y for _, y, _ in self.series[label]]

    def x_values(self, label: str) -> List[float]:
        """The x grid of one curve."""
        return [x for x, _, _ in self.series[label]]

    def peak_x(self, label: str) -> float:
        """The x at which a curve attains its maximum."""
        points = self.series[label]
        return max(points, key=lambda p: p[1])[0]


def _resolve_executor(
    executor,
    queue_dir: Optional[str],
    processes: Optional[int],
    options: ResilienceOptions,
) -> Tuple[Optional[Executor], bool]:
    """Turn ``run_sweep``'s ``executor`` argument into an instance.

    Returns ``(instance, owned)``: ``None`` instance means "let the
    supervisor build its default from ``processes``" (the legacy
    behavior); a string is resolved through
    :func:`repro.exec.make_executor` and owned (closed) by the sweep;
    anything else is treated as a ready-made executor the caller
    keeps ownership of.
    """
    if executor is None:
        return None, False
    if isinstance(executor, str):
        return (
            make_executor(
                executor,
                processes=processes,
                point_timeout=options.point_timeout,
                fault_plan=options.fault_plan,
                backend_resilience=options.backend_resilience,
                queue_dir=queue_dir,
            ),
            True,
        )
    return executor, False


def sweep_eval_plan(metric: str, plan: SimulationPlan,
                    seed: int) -> EvaluationPlan:
    """The evaluation plan a sweep roots every point's task in.

    Derived metrics (``total_useful_work``) resolve to the base metric
    the backends actually produce; the scale factor is applied at
    assembly time from each point's own processor count.
    """
    base_metric = DERIVED_METRICS.get(metric, metric)
    return EvaluationPlan(metrics=(base_metric,), simulation=plan, seed=seed)


def build_sweep_tasks(
    points: Sequence[SweepPoint],
    eval_plan: EvaluationPlan,
    seed: int,
    backend: str,
    cache_dir: Optional[str] = None,
    priority: int = 0,
    skip_keys: Optional[Dict[Tuple[str, float], Outcome]] = None,
) -> List[EvaluationTask]:
    """The :class:`~repro.exec.EvaluationTask` list for a sweep.

    One task per point not already answered in ``skip_keys``, seeded
    ``seed + index`` (the historical per-point convention the retry
    derivation builds on). This is the single construction recipe for
    the in-process sweep (:func:`run_sweep`) and the service-mode job
    API (:mod:`repro.service.jobs`), so both submit byte-identical
    work and coalesce on the same cache keys.
    """
    skip = skip_keys or {}
    return [
        EvaluationTask(
            index=index,
            series=point.series,
            # Raw (possibly integral) x: the archive preserves the
            # declared type, exactly as the pre-executor path did.
            x=point.x,
            params=point.params,
            plan=eval_plan,
            backend=backend,
            base_seed=seed + index,
            priority=priority,
            cache_dir=cache_dir,
        )
        for index, point in enumerate(points)
        if (point.series, float(point.x)) not in skip
    ]


def _check_unique_points(points: Sequence[SweepPoint]) -> None:
    """Reject sweeps with colliding ``(series, x)`` keys.

    Two points sharing a key are ambiguous everywhere downstream: the
    figure plots one y per (series, x), the journal resumes by that
    key, and the total-useful-work scaling must know *which* point's
    processor count applies.
    """
    seen: Dict[Tuple[str, float], int] = {}
    for index, point in enumerate(points):
        key = (point.series, float(point.x))
        if key in seen:
            raise ValueError(
                f"duplicate sweep point: series {point.series!r} at "
                f"x={point.x:g} appears at indices {seen[key]} and {index}; "
                "every (series, x) pair must be unique within a sweep"
            )
        seen[key] = index


def _check_backend(
    backend_name: str, metric: str, points: Sequence[SweepPoint],
    plan: EvaluationPlan,
):
    """Resolve and vet the backend for a sweep, up front.

    Raises :class:`~repro.backends.base.UnsupportedMetricError` (with
    the backends that *could* produce the metric) or
    :class:`~repro.backends.base.UnsupportedParametersError` naming
    the first offending point — before any simulation time is spent.
    """
    backend = get_backend(backend_name)
    if not backend.capabilities.supports_metric(metric):
        able = [
            other.id
            for other in all_backends()
            if other.capabilities.supports_metric(metric)
        ]
        hint = (
            f"; backends that can: {', '.join(able)}"
            if able
            else ""
        )
        raise UnsupportedMetricError(
            f"backend {backend_name!r} cannot produce metric {metric!r} "
            f"(it supports: {', '.join(sorted(backend.capabilities.metrics))})"
            f"{hint}"
        )
    for point in points:
        reason = backend.supports(point.params, plan)
        if reason is not None:
            raise UnsupportedParametersError(
                f"backend {backend_name!r} cannot evaluate point "
                f"{point.series!r} @ x={point.x:g}: {reason}"
            )
    return backend


def run_sweep(
    figure_id: str,
    title: str,
    x_label: str,
    metric: str,
    points: Sequence[SweepPoint],
    plan: SimulationPlan,
    seed: int = 0,
    processes: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    resilience: Optional[ResilienceOptions] = None,
    backend: str = DEFAULT_BACKEND,
    executor=None,
    queue_dir: Optional[str] = None,
) -> FigureResult:
    """Evaluate every point and assemble the figure.

    ``metric`` selects the reported y value: ``"useful_work_fraction"``
    or ``"total_useful_work"`` (the latter scales the fraction by the
    point's processor count). Point ``i`` uses seed ``seed + i`` so a
    sweep is reproducible and points are independent; a retried point
    uses a seed derived from ``(seed + i, attempt)``.

    ``backend`` names the registered evaluation backend every point
    runs through (default ``"san-sim"``, the full SAN simulation);
    the backend's capabilities are checked against the metric and
    every point's parameters before any work starts.

    ``resilience`` configures checkpointing, resume, retries, timeouts
    and fault injection; see
    :class:`~repro.experiments.resilience.ResilienceOptions`. With a
    ``checkpoint_dir`` the sweep journals every completed point to
    ``<checkpoint_dir>/<figure_id>.journal.jsonl`` and a re-run resumes
    from it, producing a figure bit-identical to an uninterrupted run.
    With a ``cache_dir`` every evaluated point is stored in (and looked
    up from) a content-addressed result cache keyed by the canonical
    parameter hash, backend id/version and schema version, so repeated
    sweeps skip already-evaluated points across runs.

    ``executor`` selects the execution substrate (see
    :mod:`repro.exec`): ``None`` keeps the legacy behavior (a serial
    executor, or a pool when ``processes >= 2``); the strings
    ``"serial"`` / ``"pool"`` / ``"queue"`` build the named executor
    (``"queue"`` requires ``queue_dir``); an
    :class:`~repro.exec.base.Executor` instance is driven as-is and
    left open, so several sweeps can share one persistent queue and
    coalesce their common points. The manifest's ``execution``
    section records which executor ran and what it did.
    """
    if metric not in ("useful_work_fraction", "total_useful_work"):
        raise ValueError(f"unknown metric {metric!r}")
    _check_unique_points(points)
    start_clock = time.monotonic()
    reg = obs_metrics.registry()
    reg.counter("sweep.runs").inc()

    options = resilience or ResilienceOptions()
    if options.wall_clock_budget is not None:
        plan = replace(plan, wall_clock_budget=options.wall_clock_budget)
    if options.backend_resilience is not None:
        # Discard events a previously interrupted run may have left so
        # this run's manifest records only its own story.
        from ..resilience import events as resilience_events

        resilience_events.drain()

    eval_plan = sweep_eval_plan(metric, plan, seed)
    base_metric = eval_plan.metrics[0]
    backend_obj = _check_backend(backend, metric, points, eval_plan)

    total = len(points)
    notes: List[str] = []
    if plan.strategy != "flat":
        # Flat sweeps carry no note so pre-zoo archives stay
        # bit-identical; non-flat runs are visibly labelled.
        notes.append(f"checkpoint strategy: {plan.strategy}")
    completed: Dict[Tuple[str, float], Outcome] = {}
    journal: Optional[CheckpointJournal] = None
    if options.checkpoint_dir:
        journal = CheckpointJournal(
            os.path.join(options.checkpoint_dir, f"{figure_id}.journal.jsonl")
        )
        fingerprint = CheckpointJournal.fingerprint(
            figure_id,
            metric,
            seed,
            plan,
            [(p.series, float(p.x), repr(p.params)) for p in points],
            backend=backend,
        )
        if options.resume:
            state = journal.load(fingerprint)
            completed = state.outcomes
            notes.extend(state.notes)
        else:
            journal.discard()
        journal.begin(
            fingerprint,
            {"figure_id": figure_id, "metric": metric, "seed": seed,
             "n_points": total, "backend": backend},
        )
        if completed:
            notes.append(
                f"resumed from checkpoint journal: {len(completed)} of "
                f"{total} point(s) already simulated"
            )

    points_from_journal = len(completed)
    cache = ResultCache(options.cache_dir) if options.cache_dir else None
    cache_hits = 0
    if cache is not None:
        for index, point in enumerate(points):
            key = (point.series, float(point.x))
            if key in completed:
                continue
            cached = cache.get(
                backend_obj, point.params, eval_plan.with_seed(seed + index)
            )
            if cached is None:
                continue
            value = cached.metrics.get(base_metric)
            if value is None:
                continue
            # Keep the point's declared x (and its type): executed
            # points carry task.x through unchanged, so a cache-served
            # point must too or warm archives stop being bit-identical
            # to cold ones (131072 would become 131072.0).
            outcome: Outcome = (
                point.series, point.x, value.mean, value.half_width
            )
            completed[key] = outcome
            cache_hits += 1
            if journal is not None:
                journal.record_point(
                    index, outcome[0], outcome[1], outcome[2], outcome[3],
                    attempt=0, seed_used=seed + index,
                )
        if cache_hits:
            notes.append(
                f"result cache: {cache_hits} of {total} point(s) reused "
                f"from {options.cache_dir}"
            )

    done = len(completed)
    if progress and done:
        progress(done, total)

    tasks = build_sweep_tasks(
        points, eval_plan, seed, backend,
        cache_dir=options.cache_dir, skip_keys=completed,
    )

    completed_this_run = 0

    def on_success(task: EvaluationTask, outcome: Outcome, attempt: int,
                   seed_used: int) -> None:
        nonlocal done, completed_this_run
        if journal is not None:
            journal.record_point(
                task.index, outcome[0], outcome[1], outcome[2], outcome[3],
                attempt, seed_used,
            )
        done += 1
        completed_this_run += 1
        if progress:
            progress(done, total)
        if options.fault_plan is not None:
            options.fault_plan.after_success(completed_this_run)

    worker_count = processes if processes is not None else 1
    exec_instance, owns_executor = _resolve_executor(
        executor, queue_dir, processes, options
    )
    supervisor = SweepSupervisor(
        options,
        processes=worker_count,
        on_success=on_success,
        executor=exec_instance,
    )
    try:
        supervised: SupervisorResult = supervisor.run(tasks)
    finally:
        if owns_executor and exec_instance is not None:
            exec_instance.close()
        if journal is not None:
            journal.close()

    outcomes_by_key: Dict[Tuple[str, float], Outcome] = dict(completed)
    for index, outcome in supervised.outcomes.items():
        outcomes_by_key[(outcome[0], float(outcome[1]))] = outcome
    notes.extend(supervised.notes)

    if progress and supervised.failures:
        # Failed points still count as "handled" so progress reaches total.
        done += len(supervised.failures)
        progress(done, total)

    figure = FigureResult(figure_id, title, x_label, metric, backend=backend)
    figure.failures = list(supervised.failures)
    for report in supervised.failures:
        notes.append("FAILED: " + report.summary())
    if not backend_obj.capabilities.exact and plan.replications < 2:
        figure.unvalidated_intervals = True
        notes.append(
            f"UNVALIDATED intervals: stochastic backend {backend!r} ran "
            f"with {plan.replications} replication(s); half-widths carry "
            "no statistical information and archive comparison will not "
            "claim interval overlap from them"
        )
    figure.notes = notes

    # Assemble in declared point order (deterministic regardless of
    # scheduling); the scale factor comes from the point itself, so two
    # configurations can never collide the way a (series, x)-keyed
    # lookup table could.
    for point in points:
        outcome = outcomes_by_key.get((point.series, float(point.x)))
        if outcome is None:
            continue
        _, x, mean, half_width = outcome
        if metric == "total_useful_work":
            factor = point.params.n_processors
            entry = (x, mean * factor, half_width * factor)
        else:
            entry = (x, mean, half_width)
        figure.series.setdefault(point.series, []).append(entry)
    for label in figure.series:
        figure.series[label].sort(key=lambda p: p[0])

    # Backend-level resilience bookkeeping: drain the structured event
    # log (serial sweeps see every event; pooled workers keep theirs,
    # which is noted rather than papered over) into the figure notes
    # and the manifest's resilience section.
    resilience_section: Optional[Dict[str, object]] = None
    if options.backend_resilience is not None:
        from ..resilience import events as resilience_events

        res_events = resilience_events.drain()
        summary = resilience_events.summarize(res_events)
        resilience_section = {
            "events": res_events,
            "summary": summary,
        }
        pooled = (
            exec_instance.capabilities.name == "pool"
            if exec_instance is not None
            else worker_count > 1
        )
        if pooled:
            resilience_section["note"] = (
                "pooled workers log resilience events in their own "
                "processes; this section covers supervisor-side events only"
            )
        # ``figure.notes`` is the same list object as ``notes``.
        for stamp in sorted(set(summary.get("degraded", []))):
            notes.append(f"DEGRADED: {stamp}")
        by_kind = summary.get("by_kind", {})
        if by_kind:
            notes.append(
                "backend resilience: "
                + ", ".join(
                    f"{kind}={count}" for kind, count in sorted(by_kind.items())
                )
            )

    new_evaluations = len(supervised.outcomes)
    retries = sum(
        max(0, attempts - 1) for attempts in supervised.attempts.values()
    )
    reg.counter("sweep.points_total").inc(total)
    reg.counter("sweep.points_from_journal").inc(points_from_journal)
    reg.counter("sweep.points_from_cache").inc(cache_hits)
    reg.counter("sweep.evaluations").inc(new_evaluations)
    reg.counter("sweep.retries").inc(retries)
    reg.counter("sweep.failed_points").inc(len(supervised.failures))
    wall_clock = time.monotonic() - start_clock
    reg.timing("sweep.run_seconds").observe(wall_clock)

    execution_section: Dict[str, object] = dict(supervised.execution or {})
    if not execution_section:
        # Nothing needed executing (fully journaled/cached sweep):
        # still record which executor *would* have run.
        execution_section = {
            "executor": (
                exec_instance.capabilities.name
                if exec_instance is not None
                else ("pool" if worker_count > 1 else "serial")
            ),
            "tasks_executed": 0,
        }
    execution_section["attempts"] = {
        str(index): count
        for index, count in sorted(supervised.attempts.items())
    }

    aggregate = profiling.aggregated()
    sink = default_sink()
    figure.manifest = RunManifest(
        figure_id=figure_id,
        backend=backend,
        backend_version=backend_obj.backend_version,
        metric=metric,
        seed=seed,
        plan=asdict(plan),
        points_total=total,
        points_from_journal=points_from_journal,
        points_from_cache=cache_hits,
        new_evaluations=new_evaluations,
        retries=retries,
        failed_points=len(supervised.failures),
        kernel_stats=aggregate.as_dict() if aggregate is not None else None,
        metrics=reg.snapshot(),
        trace=sink.summary() if isinstance(sink, JsonlTraceSink) else None,
        wall_clock_seconds=wall_clock,
        resilience=resilience_section,
        execution=execution_section,
        notes=list(notes),
    )
    return figure
