"""One function per figure of the paper's evaluation (Section 7).

Every ``figure_*`` function returns a
:class:`~repro.experiments.runner.FigureResult` holding the same
series the paper plots. The shapes — not the absolute job-unit
magnitudes — are the reproduction criteria (see DESIGN.md); the
benchmark suite asserts them via :mod:`repro.experiments.validation`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analytical import coordination as coordination_math
from ..analytical import markov
from ..cluster import ClusterSimulator
from ..core.parameters import HOUR, MINUTE, YEAR, CoordinationMode, ModelParameters
from .config import INTERVAL_GRID_MIN, PROCESSOR_GRID, base_parameters, plan_for
from .resilience import ResilienceOptions
from .runner import FigureResult, SweepPoint, run_sweep

__all__ = [
    "figure_4a",
    "figure_4b",
    "figure_4c",
    "figure_4d",
    "figure_4e",
    "figure_4f",
    "figure_4g",
    "figure_4h",
    "figure_5",
    "figure_6",
    "figure_7",
    "figure_8",
    "figure_3",
    "coordination_law",
    "section_7_1",
    "FIGURE_RUNNERS",
]


def _sweep(figure_id, title, x_label, metric, points, preset, seed, processes,
           resilience=None):
    return run_sweep(
        figure_id,
        title,
        x_label,
        metric,
        points,
        plan_for(preset),
        seed=seed,
        processes=processes,
        resilience=resilience,
    )


# ----------------------------------------------------------------------
# Figure 4: base-model sensitivity study
# ----------------------------------------------------------------------
def figure_4a(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Total useful work vs number of processors for different MTTFs
    (MTTR = 10 min, checkpoint interval = 30 min)."""
    base = base_parameters()
    points = [
        SweepPoint(
            series=f"MTTF (yrs) = {mttf_years:g}",
            x=n,
            params=base.with_overrides(
                n_processors=n, mttf_node=mttf_years * YEAR
            ),
        )
        for mttf_years in (0.125, 0.25, 0.5, 1, 2)
        for n in PROCESSOR_GRID
    ]
    return _sweep(
        "fig4a",
        "Useful work vs number of processors for different MTTFs",
        "number of processors",
        "total_useful_work",
        points,
        preset,
        seed,
        processes,
        resilience,
    )


def figure_4b(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Total useful work vs checkpoint interval for different numbers
    of processors (MTTF = 1 yr, MTTR = 10 min)."""
    base = base_parameters()
    points = [
        SweepPoint(
            series=f"processors = {n}",
            x=interval_min,
            params=base.with_overrides(
                n_processors=n, checkpoint_interval=interval_min * MINUTE
            ),
        )
        for n in PROCESSOR_GRID
        for interval_min in INTERVAL_GRID_MIN
    ]
    return _sweep(
        "fig4b",
        "Useful work vs checkpoint interval for different numbers of processors",
        "checkpoint interval (mins)",
        "total_useful_work",
        points,
        preset,
        seed,
        processes,
        resilience,
    )


def figure_4c(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Total useful work vs number of processors for different MTTRs
    (MTTF = 1 yr, checkpoint interval = 30 min)."""
    base = base_parameters()
    points = [
        SweepPoint(
            series=f"MTTR (mins) = {mttr_min}",
            x=n,
            params=base.with_overrides(n_processors=n, mttr=mttr_min * MINUTE),
        )
        for mttr_min in (10, 20, 40, 80)
        for n in PROCESSOR_GRID
    ]
    return _sweep(
        "fig4c",
        "Useful work vs number of processors for different MTTRs",
        "number of processors",
        "total_useful_work",
        points,
        preset,
        seed,
        processes,
        resilience,
    )


def figure_4d(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Total useful work vs checkpoint interval for different MTTRs
    (MTTF = 1 yr, 64K processors)."""
    base = base_parameters()
    points = [
        SweepPoint(
            series=f"MTTR (mins) = {mttr_min}",
            x=interval_min,
            params=base.with_overrides(
                mttr=mttr_min * MINUTE, checkpoint_interval=interval_min * MINUTE
            ),
        )
        for mttr_min in (10, 20, 40, 80)
        for interval_min in INTERVAL_GRID_MIN
    ]
    return _sweep(
        "fig4d",
        "Useful work vs checkpoint interval for different MTTRs",
        "checkpoint interval (mins)",
        "total_useful_work",
        points,
        preset,
        seed,
        processes,
        resilience,
    )


def figure_4e(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Total useful work vs number of processors for different
    checkpoint intervals (MTTF = 1 yr, MTTR = 10 min)."""
    base = base_parameters()
    points = [
        SweepPoint(
            series=f"chkpt_interval (mins) = {interval_min}",
            x=n,
            params=base.with_overrides(
                n_processors=n, checkpoint_interval=interval_min * MINUTE
            ),
        )
        for interval_min in INTERVAL_GRID_MIN
        for n in PROCESSOR_GRID
    ]
    return _sweep(
        "fig4e",
        "Useful work vs number of processors for different checkpoint intervals",
        "number of processors",
        "total_useful_work",
        points,
        preset,
        seed,
        processes,
        resilience,
    )


def figure_4f(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Total useful work vs checkpoint interval for different MTTFs
    (MTTR = 10 min, 64K processors)."""
    base = base_parameters()
    points = [
        SweepPoint(
            series=f"MTTF per node (yrs) = {mttf_years}",
            x=interval_min,
            params=base.with_overrides(
                mttf_node=mttf_years * YEAR,
                checkpoint_interval=interval_min * MINUTE,
            ),
        )
        for mttf_years in (1, 2, 4, 8, 16)
        for interval_min in INTERVAL_GRID_MIN
    ]
    return _sweep(
        "fig4f",
        "Useful work vs checkpoint interval for different MTTFs",
        "checkpoint interval (mins)",
        "total_useful_work",
        points,
        preset,
        seed,
        processes,
        resilience,
    )


def _nodes_figure(
    figure_id: str,
    processors_per_node: int,
    node_grid: Sequence[int],
    preset: str,
    seed: int,
    processes: Optional[int],
    resilience: Optional[ResilienceOptions],
) -> FigureResult:
    base = base_parameters()
    points = [
        SweepPoint(
            series=f"MTTF per node (yrs) = {mttf_years}",
            x=nodes,
            params=base.with_overrides(
                n_processors=nodes * processors_per_node,
                processors_per_node=processors_per_node,
                mttf_node=mttf_years * YEAR,
            ),
        )
        for mttf_years in (1, 2)
        for nodes in node_grid
    ]
    return _sweep(
        figure_id,
        f"Total useful work vs number of nodes, {processors_per_node} processors/node",
        "number of nodes",
        "total_useful_work",
        points,
        preset,
        seed,
        processes,
        resilience,
    )


def figure_4g(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Total useful work vs number of nodes at 32 processors per node
    (MTTF per node of 1 and 2 years)."""
    return _nodes_figure(
        "fig4g", 32, (8192, 16384, 32768), preset, seed, processes, resilience
    )


def figure_4h(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Total useful work vs number of nodes at 16 processors per node
    (MTTF per node of 1 and 2 years)."""
    return _nodes_figure(
        "fig4h", 16, (8192, 16384, 32768, 65536), preset, seed, processes,
        resilience,
    )


# ----------------------------------------------------------------------
# Figure 5: coordination only (no failures, no timeout)
# ----------------------------------------------------------------------
def figure_5(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Useful work fraction vs processors under pure coordination.

    Failures are disabled (per-node MTTF of 10^12 years — at 2^30
    processors the *system* failure rate still matters, so the margin
    must be enormous) and the
    coordination time is the max-of-``n``-exponentials order statistic.
    To keep the checkpoint I/O path identical across the entire range
    (1 processor to 2^30), each "node" carries one processor and the
    dump/write latencies are pinned to the paper's full-group values
    (46.8 s / 131 s) by scaling the per-node checkpoint size with the
    group size of one.
    """
    grid = [4**k for k in range(0, 16)]  # 1 .. ~1.07e9 processors
    points: List[SweepPoint] = []
    for mttq in (10.0, 2.0, 0.5):
        for n in grid:
            params = ModelParameters(
                n_processors=n,
                processors_per_node=1,
                mttf_node=1e12 * YEAR,
                mttq=mttq,
                coordination_mode=CoordinationMode.MAX_OF_EXPONENTIALS,
                coordination_over="processors",
                compute_nodes_per_io_node=1,
                checkpoint_size_per_node=16.384e9,  # keeps dump at 46.8 s
                compute_fraction=1.0,
                timeout=None,
            )
            points.append(SweepPoint(series=f"MTTQ={mttq:g}s", x=n, params=params))
    figure = _sweep(
        "fig5",
        "Useful work fraction with coordination (no timeouts or failures)",
        "number of processors",
        "useful_work_fraction",
        points,
        preset,
        seed,
        processes,
        resilience,
    )
    # Attach the closed-form prediction for each curve as a note.
    for mttq in (10.0, 2.0, 0.5):
        predicted = [
            coordination_math.coordination_only_useful_fraction(
                n, mttq, 30 * MINUTE, broadcast_overhead=0.002, dump_time=46.8
            )
            for n in grid
        ]
        figure.notes.append(
            f"analytic MTTQ={mttq:g}s: "
            + ", ".join(f"{value:.4f}" for value in predicted)
        )
    return figure


# ----------------------------------------------------------------------
# Figure 6: coordination + timeout + failures
# ----------------------------------------------------------------------
def figure_6(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Useful work fraction vs processors under coordination with
    timeouts (MTTF per node = 3 yrs, interval = 30 min, MTTQ = 10 s)."""
    base = base_parameters().with_overrides(
        mttf_node=3 * YEAR,
        mttq=10.0,
        coordination_mode=CoordinationMode.MAX_OF_EXPONENTIALS,
    )
    points: List[SweepPoint] = []
    for n in PROCESSOR_GRID:
        points.append(
            SweepPoint(
                series="no coordination",
                x=n,
                params=base.with_overrides(
                    n_processors=n,
                    coordination_mode=CoordinationMode.AGGREGATE_EXPONENTIAL,
                ),
            )
        )
        points.append(
            SweepPoint(
                series="no timeout",
                x=n,
                params=base.with_overrides(n_processors=n, timeout=None),
            )
        )
        for timeout in (120, 100, 80, 60, 40, 20):
            points.append(
                SweepPoint(
                    series=f"timeout={timeout}s",
                    x=n,
                    params=base.with_overrides(n_processors=n, timeout=float(timeout)),
                )
            )
    return _sweep(
        "fig6",
        "Useful work fraction with coordination and timeout (with failures)",
        "number of processors",
        "useful_work_fraction",
        points,
        preset,
        seed,
        processes,
        resilience,
    )


# ----------------------------------------------------------------------
# Figures 7 and 8: correlated failures
# ----------------------------------------------------------------------
def figure_7(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Useful work fraction vs probability of correlated failure for
    error-propagation correlated failures (MTTF = 3 yrs, 256K
    processors, window = 3 min)."""
    base = base_parameters().with_overrides(
        n_processors=262144, mttf_node=3 * YEAR
    )
    points = [
        SweepPoint(
            series=f"frate_correlated_times={r}",
            x=p_e,
            params=base.with_overrides(
                prob_correlated_failure=p_e, frate_correlated_factor=float(r)
            ),
        )
        for r in (400, 800, 1600)
        for p_e in (0.0, 0.05, 0.10, 0.15, 0.20)
    ]
    return _sweep(
        "fig7",
        "Impact of correlated failures due to error propagation",
        "probability of correlated failure",
        "useful_work_fraction",
        points,
        preset,
        seed,
        processes,
        resilience,
    )


def figure_8(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Useful work fraction vs processors with and without generic
    correlated failures (coefficient = 0.0025, factor = 400, MTTF =
    3 yrs, interval = 30 min) — the whole-system failure rate doubles."""
    base = base_parameters().with_overrides(mttf_node=3 * YEAR)
    points: List[SweepPoint] = []
    for n in PROCESSOR_GRID:
        points.append(
            SweepPoint(
                series="without correlated failure",
                x=n,
                params=base.with_overrides(n_processors=n),
            )
        )
        points.append(
            SweepPoint(
                series="with correlated failure",
                x=n,
                params=base.with_overrides(
                    n_processors=n,
                    generic_correlated_coefficient=0.0025,
                    frate_correlated_factor=400.0,
                ),
            )
        )
    return _sweep(
        "fig8",
        "Impact of generic correlated failures",
        "number of processors",
        "useful_work_fraction",
        points,
        preset,
        seed,
        processes,
        resilience,
    )


# ----------------------------------------------------------------------
# Closed-form / cross-validation "figures"
# ----------------------------------------------------------------------
def figure_3(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """The Section 6 birth–death chain, solved exactly for the paper's
    worked example (n = 1024, p = 0.3, MTTR = 10 min, MTTF = 25 yrs,
    giving r ≈ 550)."""
    n, p, mttr, mttf = 1024, 0.3, 10 * MINUTE, 25 * YEAR
    lam, mu = 1.0 / mttf, 1.0 / mttr
    r = markov.frate_factor(p, mu, n, lam)
    solution = markov.solve_birth_death(n, lam, r, mu, max_failures=8)
    figure = FigureResult(
        "fig3",
        "Birth-death Markov process of correlated failures (exact steady state)",
        "failures since last successful recovery",
        "useful_work_fraction",
    )
    figure.series["P(F_i)"] = [
        (
            float(i),
            solution.probability_of(lambda m, i=i: m["failures"] == i),
            0.0,
        )
        for i in range(5)
    ]
    figure.notes.append(f"derived frate_correlated_factor r = {r:.1f} (paper: ~600)")
    figure.notes.append(
        f"conditional follow-on probability implied by r: "
        f"{markov.conditional_probability(r, mu, n, lam):.3f} (target {p})"
    )
    figure.notes.append(
        f"expected recoveries per burst: {markov.expected_recoveries_per_burst(p):.3f}"
    )
    return figure


def coordination_law(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """Cross-validation of the Section 5 coordination law against the
    message-level cluster simulator: measured mean coordination time
    vs ``MTTQ * H_n`` for increasing node counts."""
    durations = {"quick": 10 * HOUR, "standard": 40 * HOUR, "full": 100 * HOUR}
    duration = durations.get(preset, 40 * HOUR)
    figure = FigureResult(
        "coordination-law",
        "Cluster-simulator coordination time vs max-of-exponentials law",
        "number of nodes",
        "useful_work_fraction",
    )
    measured = []
    predicted = []
    for nodes in (64, 128, 256, 512, 1024):
        params = ModelParameters(
            n_processors=nodes * 8,
            processors_per_node=8,
            mttf_node=1000 * YEAR,
            mttq=10.0,
        )
        result = ClusterSimulator(params, seed=seed).run(duration=duration)
        measured.append((float(nodes), result.mean_coordination_time, 0.0))
        predicted.append(
            (
                float(nodes),
                coordination_math.expected_coordination_time(nodes, 10.0),
                0.0,
            )
        )
    figure.series["cluster simulator (measured)"] = measured
    figure.series["MTTQ * H_n (predicted)"] = predicted
    return figure


def section_7_1(
    preset: str = "standard",
    seed: int = 0,
    processes: Optional[int] = None,
    resilience: Optional[ResilienceOptions] = None,
) -> FigureResult:
    """The Section 7.1 headline: the optimum processor count for the
    base configuration and the useful work fraction at the peak."""
    figure_a = figure_4a(
        preset=preset, seed=seed, processes=processes, resilience=resilience
    )
    label = "MTTF (yrs) = 1"
    peak_x = figure_a.peak_x(label)
    points = dict(
        (x, (y, h)) for x, y, h in figure_a.series[label]
    )
    peak_tuw, _ = points[peak_x]
    headline = FigureResult(
        "section7.1",
        "Optimum processor count, base model (MTTF 1 yr, MTTR 10 min, 30 min interval)",
        "number of processors",
        "total_useful_work",
    )
    headline.series[label] = figure_a.series[label]
    headline.notes.append(
        f"optimum processors = {int(peak_x)} (paper: 131072 = 128K)"
    )
    headline.notes.append(
        f"useful work fraction at peak = {peak_tuw / peak_x:.3f} (paper: 0.427)"
    )
    return headline


#: Dispatch table used by the CLI and the benchmark suite.
FIGURE_RUNNERS = {
    "fig4a": figure_4a,
    "fig4b": figure_4b,
    "fig4c": figure_4c,
    "fig4d": figure_4d,
    "fig4e": figure_4e,
    "fig4f": figure_4f,
    "fig4g": figure_4g,
    "fig4h": figure_4h,
    "fig5": figure_5,
    "fig6": figure_6,
    "fig7": figure_7,
    "fig8": figure_8,
    "fig3": figure_3,
    "coordination-law": coordination_law,
    "section7.1": section_7_1,
}
