"""Command-line interface: regenerate any table or figure.

Usage::

    python -m repro list
    python -m repro backends
    python -m repro table3
    python -m repro run-figure fig4a --preset quick --seed 7
    python -m repro run-figure fig4a --preset quick --backend analytical
    python -m repro run-all --preset standard --output EXPERIMENTS.out.md
    python -m repro run-figure fig4a --checkpoint-dir ckpt --resume \
        --retries 3 --point-timeout 1800 --processes 4 --cache-dir cache
    python -m repro run-figure fig4a --preset quick --save-json out \
        --metrics-out metrics.json --trace-out trace.jsonl --trace-sample 100
    python -m repro obs out                 # render the run manifests
    python -m repro obs metrics.json        # render a metrics snapshot
    python -m repro validate                # full statistical validation suite
    python -m repro validate --record --seed 0 --seed 1
    python -m repro validate --check        # per-point drift vs the baselines
    python -m repro validate --perturb mttf_node=0.25   # mutation smoke
    python -m repro run-figure fig4a --backend-deadline 60 --backend-retries 2 \
        --degrade-to san-sim-full --breaker-state-dir health
    python -m repro backends --state-dir health   # breaker state per backend
    python -m repro chaos fig4a --preset quick --scale 0.1 --max-points 4 \
        --crash 0.5 --hang 0.25 --hang-seconds 120 --deadline 30
    python -m repro worker --queue-dir q --idle-exit 10   # queue drainer
    python -m repro job submit fig4a --queue-dir q --preset quick \
        --max-points 6 --tenant ci
    python -m repro job status JOB --queue-dir q --wait --timeout 300
    python -m repro job collect JOB --queue-dir q --save-json out
    python -m repro cache prune --cache-dir cache --max-bytes 1048576
"""

from __future__ import annotations

import argparse
import io
import os
import sys
import time
from typing import List, Optional

from ..backends import BackendError, all_backends, backend_ids
from ..exec import EXECUTOR_IDS, ExecutorError
from ..strategies import StrategyError
from .config import FIGURE_IDS, PRESETS
from .figures import FIGURE_RUNNERS
from .report import (
    render_ascii_chart,
    render_figure,
    render_table3,
    write_markdown_section,
)
from .validation import validate_figure

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation of 'Modeling Coordinated Checkpointing "
            "for Large-Scale Supercomputers' (DSN 2005)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list every experiment id")
    backends = sub.add_parser(
        "backends",
        help="list the registered evaluation backends and their capabilities",
    )
    backends.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help=(
            "also render each backend's circuit-breaker health from the "
            "state files a resilient run wrote there "
            "(--breaker-state-dir / chaos --state-dir)"
        ),
    )
    sub.add_parser(
        "strategies",
        help=(
            "list the registered checkpointing strategies, their spec "
            "parameters and their flat-reduction oracles"
        ),
    )
    sub.add_parser("table3", help="print the model-parameter table")

    chaos = sub.add_parser(
        "chaos",
        help=(
            "regenerate a figure clean and under injected backend faults "
            "(crash/hang/slow/corrupt) behind the resilient execution "
            "layer, and assert the archives still agree"
        ),
    )
    chaos.add_argument(
        "figure", nargs="?", default="fig4a",
        help="sweep figure to afflict (default: fig4a)",
    )
    chaos.add_argument(
        "--preset", default="quick", choices=sorted(PRESETS),
        help="simulation length/replication preset (default: quick)",
    )
    chaos.add_argument("--seed", type=int, default=0, help="root random seed")
    chaos.add_argument(
        "--scale", type=float, default=1.0,
        help="scale the simulation effort (CI smoke uses <1)",
    )
    chaos.add_argument(
        "--max-points", type=int, default=None, metavar="N",
        help="slice the sweep to its first N points",
    )
    chaos.add_argument(
        "--crash", type=float, default=0.5, metavar="FRACTION",
        help="fraction of evaluations that crash on every attempt "
             "(forces degradation; default 0.5)",
    )
    chaos.add_argument(
        "--hang", type=float, default=0.0, metavar="FRACTION",
        help="fraction of evaluations that hang past the deadline",
    )
    chaos.add_argument(
        "--hang-seconds", type=float, default=3600.0, metavar="SECONDS",
        help="how long an injected hang sleeps (default: 3600)",
    )
    chaos.add_argument(
        "--slow", type=float, default=0.0, metavar="FRACTION",
        help="fraction of evaluations delayed by --slow-seconds",
    )
    chaos.add_argument(
        "--slow-seconds", type=float, default=0.0, metavar="SECONDS",
        help="latency added to slow-afflicted evaluations",
    )
    chaos.add_argument(
        "--corrupt", type=float, default=0.0, metavar="FRACTION",
        help="fraction of evaluations whose result means are corrupted "
             "(only the tolerance comparison can catch these)",
    )
    chaos.add_argument(
        "--fault-salt", default="", metavar="TOKEN",
        help="vary the deterministic fault pattern at the same fractions",
    )
    chaos.add_argument(
        "--deadline", type=float, default=30.0, metavar="SECONDS",
        help="wall-clock deadline per evaluation attempt (default: 30)",
    )
    chaos.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="retries per evaluation before degrading (default: 1)",
    )
    chaos.add_argument(
        "--degrade-to", action="append", default=None, metavar="BACKEND",
        help=(
            "fallback backend chain, in order (repeatable; default: "
            "san-sim-full when the figure runs on san-sim)"
        ),
    )
    chaos.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="write circuit-breaker state files here for 'backends --state-dir'",
    )
    chaos.add_argument(
        "--tolerance", type=float, default=0.15,
        help="relative tolerance of the archive comparison",
    )
    chaos.add_argument(
        "--out", default=None, metavar="DIR",
        help="save both archives under DIR/clean and DIR/faulted",
    )
    chaos.add_argument(
        "--executor", default=None, choices=["serial", "queue"],
        help=(
            "execution substrate for both runs (default: serial; "
            "'pool' is rejected because pooled workers cannot ship "
            "the resilience event log back to the parent)"
        ),
    )
    chaos.add_argument(
        "--queue-dir", default=None, metavar="DIR",
        help=(
            "directory backing the 'queue' executor; each run gets "
            "its own sub-queue under DIR/clean and DIR/faulted"
        ),
    )

    worker = sub.add_parser(
        "worker",
        help=(
            "run a long-lived queue drainer: claim tasks from a shared "
            "--queue-dir, execute them through the resilience layer while "
            "heartbeating the in-flight lease, exit cleanly on SIGTERM "
            "after the current task (see docs/EXECUTION.md, Service mode)"
        ),
    )
    worker.add_argument(
        "--queue-dir", required=True, metavar="DIR",
        help="shared queue directory (same layout as the queue executor)",
    )
    worker.add_argument(
        "--worker-id", default=None, metavar="NAME",
        help="name for this worker's log and metrics snapshot "
             "(default: worker-<pid>)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="SECONDS",
        help="sleep between polls of an empty queue (default: 0.2)",
    )
    worker.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="exit after this long with nothing claimable "
             "(default: run until signalled)",
    )
    worker.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="exit after executing N tasks (default: unlimited)",
    )
    worker.add_argument(
        "--orphan-age", type=float, default=None, metavar="SECONDS",
        help="in-flight lease threshold shared by janitor and heartbeat "
             "(default: 60)",
    )
    worker.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="cooperative wall-clock limit per task",
    )
    worker.add_argument(
        "--backend-deadline", type=float, default=None, metavar="SECONDS",
        help="deadline per backend evaluation attempt (resilient wrapper)",
    )
    worker.add_argument(
        "--backend-retries", type=int, default=None, metavar="N",
        help="retries per backend evaluation (resilient wrapper)",
    )
    worker.add_argument(
        "--degrade-to", action="append", default=None, metavar="BACKEND",
        help="fallback backend chain (repeatable; resilient wrapper)",
    )

    job = sub.add_parser(
        "job",
        help=(
            "submit a figure sweep as a named job on a shared queue, "
            "poll its status, or collect the finished figure from the "
            "results store (never blocks a worker)"
        ),
    )
    job_sub = job.add_subparsers(dest="job_command", required=True)
    job_submit = job_sub.add_parser(
        "submit", help="enqueue one figure sweep as a named job"
    )
    job_submit.add_argument("figure", help="sweep figure id (e.g. fig4a)")
    job_submit.add_argument(
        "--queue-dir", required=True, metavar="DIR",
        help="shared queue directory workers drain",
    )
    job_submit.add_argument(
        "--preset", default="quick", choices=sorted(PRESETS),
        help="simulation length/replication preset (default: quick)",
    )
    job_submit.add_argument("--seed", type=int, default=0,
                            help="root random seed")
    job_submit.add_argument(
        "--max-points", type=int, default=None, metavar="N",
        help="slice the sweep to its first N points",
    )
    job_submit.add_argument(
        "--priority", type=int, default=0,
        help="queue priority (lower runs first; default: 0)",
    )
    job_submit.add_argument(
        "--tenant", default="default", metavar="LABEL",
        help="tenant label for per-tenant accounting (default: 'default')",
    )
    job_submit.add_argument(
        "--name", default=None, metavar="NAME",
        help="human-readable job name (default: the figure id)",
    )
    job_submit.add_argument(
        "--backend", default=None, choices=backend_ids(),
        help="evaluation backend override (default: the figure's)",
    )
    job_submit.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache the workers should use",
    )
    job_status_p = job_sub.add_parser(
        "status", help="poll one job against the queue's results store"
    )
    job_status_p.add_argument("job_id", help="job id printed by submit")
    job_status_p.add_argument(
        "--queue-dir", required=True, metavar="DIR",
    )
    job_status_p.add_argument(
        "--json", action="store_true",
        help="print the status as JSON instead of one line",
    )
    job_status_p.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes (exit 1 on --timeout)",
    )
    job_status_p.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="give up waiting after this long (default: 300)",
    )
    job_status_p.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="sleep between polls with --wait (default: 0.5)",
    )
    job_collect = job_sub.add_parser(
        "collect",
        help="assemble the finished job's figure from the results store",
    )
    job_collect.add_argument("job_id", help="job id printed by submit")
    job_collect.add_argument(
        "--queue-dir", required=True, metavar="DIR",
    )
    job_collect.add_argument(
        "--save-json", default=None, metavar="DIR",
        help="archive the collected figure as JSON in this directory",
    )

    cache = sub.add_parser(
        "cache", help="maintain a content-addressed result cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_prune = cache_sub.add_parser(
        "prune",
        help=(
            "evict least-recently-used entries until the cache fits a "
            "byte budget (safe against live readers and writers)"
        ),
    )
    cache_prune.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="cache root (the --cache-dir sweeps write to)",
    )
    cache_prune.add_argument(
        "--max-bytes", type=int, required=True, metavar="N",
        help="byte budget the cache must fit after pruning",
    )

    obs = sub.add_parser(
        "obs",
        help=(
            "validate and render observability artefacts: run manifests "
            "(<figure>.manifest.json or an archive directory) and metrics "
            "snapshots written by --metrics-out"
        ),
    )
    obs.add_argument(
        "path",
        help="a manifest file, a metrics-snapshot file, or an archive directory",
    )
    obs.add_argument(
        "--json",
        action="store_true",
        help="print the validated payload as JSON instead of rendering it",
    )

    run = sub.add_parser("run-figure", help="regenerate one figure")
    run.add_argument("figure", choices=sorted(FIGURE_RUNNERS))
    _add_run_options(run)

    run_all = sub.add_parser("run-all", help="regenerate every figure")
    _add_run_options(run_all)
    run_all.add_argument(
        "--output", default=None, help="write a Markdown report to this path"
    )

    dot = sub.add_parser(
        "dot", help="print the composed checkpoint model as GraphViz DOT"
    )
    dot.add_argument("--no-clusters", action="store_true",
                     help="do not group activities by submodel")

    claims = sub.add_parser(
        "claims", help="evaluate the paper's claims against fresh runs"
    )
    _add_run_options(claims)
    claims.add_argument(
        "--from-json", default=None, metavar="DIR",
        help="evaluate against an existing JSON archive instead of re-running",
    )

    compare = sub.add_parser(
        "compare", help="compare two JSON archives within tolerance"
    )
    compare.add_argument("reference", help="reference archive directory")
    compare.add_argument("candidate", help="candidate archive directory")
    compare.add_argument("--tolerance", type=float, default=0.15,
                         help="relative tolerance per point")

    design = sub.add_parser(
        "design", help="explore the interval x machine-size design space"
    )
    design.add_argument("--mttf-years", type=float, default=1.0,
                        help="per-node MTTF in years")
    design.add_argument("--mttr-minutes", type=float, default=10.0,
                        help="system MTTR in minutes")
    design.add_argument("--processors-per-node", type=int, default=8)
    design.add_argument("--overhead-seconds", type=float, default=57.0,
                        help="blocking checkpoint overhead (quiesce + dump)")

    sensitivity = sub.add_parser(
        "sensitivity", help="rank the parameters by UWF elasticity"
    )
    sensitivity.add_argument("--processors", type=int, default=65536)
    sensitivity.add_argument("--processors-per-node", type=int, default=8)
    sensitivity.add_argument("--mttf-years", type=float, default=1.0)
    sensitivity.add_argument("--mttr-minutes", type=float, default=10.0)
    sensitivity.add_argument("--interval-minutes", type=float, default=30.0)
    sensitivity.add_argument("--overhead-seconds", type=float, default=57.0)

    completion = sub.add_parser(
        "completion", help="terminating job-completion-time study"
    )
    completion.add_argument("--work-hours", type=float, default=24.0,
                            help="job size in hours of whole-machine work")
    completion.add_argument("--processors", type=int, default=65536)
    completion.add_argument("--mttf-years", type=float, default=1.0)
    completion.add_argument("--replications", type=int, default=5)
    completion.add_argument("--seed", type=int, default=0)

    validate = sub.add_parser(
        "validate",
        help=(
            "statistical validation: sampler goodness-of-fit, SAN-executive "
            "metamorphic invariances, cross-backend differential cases, and "
            "golden-baseline drift (see docs/VALIDATION.md)"
        ),
    )
    validate.add_argument(
        "--record", action="store_true",
        help="evaluate the differential cases and freeze golden baselines",
    )
    validate.add_argument(
        "--check", action="store_true",
        help="re-evaluate and report per-point drift against the baselines",
    )
    validate.add_argument(
        "--list", action="store_true", dest="list_cases",
        help="list the differential cases and exit",
    )
    validate.add_argument(
        "--baselines", default="baselines", metavar="DIR",
        help="baseline directory (default: baselines/)",
    )
    validate.add_argument(
        "--seed", type=int, action="append", dest="seeds", metavar="N",
        help=(
            "root seed; may repeat for --record/--check "
            "(default: 0 to run, 0 and 1 to record, recorded seeds to check)"
        ),
    )
    validate.add_argument(
        "--cases", default=None, metavar="NAME[,NAME...]",
        help="restrict to these differential cases",
    )
    validate.add_argument(
        "--backends", default=None, metavar="ID[,ID...]",
        help=(
            "restrict the differential cases to these backend ids "
            "(strategy-suffixed participants such as "
            "'san-sim@incremental:...' count under their base id); "
            "cases left with fewer than two participants are dropped"
        ),
    )
    validate.add_argument(
        "--scale", type=float, default=1.0,
        help="scale the simulation effort of every case (CI smoke uses <1)",
    )
    validate.add_argument(
        "--perturb", default=None, metavar="FIELD=FACTOR[,...]",
        help=(
            "mutation smoke test: multiply these parameter fields by the "
            "given factors for the SAMPLED backends only — a meaningful "
            "perturbation must make some differential case disagree"
        ),
    )
    validate.add_argument(
        "--skip-gof", action="store_true",
        help="skip the goodness-of-fit layer",
    )
    validate.add_argument(
        "--skip-metamorphic", action="store_true",
        help="skip the metamorphic-invariance layer",
    )
    validate.add_argument(
        "--skip-differential", action="store_true",
        help="skip the differential-case layer",
    )
    validate.add_argument(
        "--json", action="store_true",
        help="print the machine-readable summary instead of the report",
    )
    return parser


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        default="standard",
        choices=sorted(PRESETS),
        help="simulation length/replication preset",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--backend",
        default=None,
        choices=backend_ids(),
        help=(
            "evaluation backend for sweep figures (default: each "
            "figure's declared backend; see the 'backends' command)"
        ),
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=["incremental", "full", "batched"],
        help=(
            "event kernel for sweep figures (default: the preset plan's "
            "kernel, i.e. incremental); 'batched' advances whole "
            "replication batches in numpy lockstep — statistically "
            "equivalent to the scalar kernels, not bit-identical"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help=(
            "replications per lockstep batch (batched kernel only; "
            "default: min(replications, 64))"
        ),
    )
    parser.add_argument(
        "--strategy",
        default=None,
        metavar="NAME[:k=v,...]",
        help=(
            "checkpointing strategy for sweep figures (default: each "
            "figure's declared strategy, i.e. the paper's flat "
            "protocol); e.g. 'incremental:compression_ratio=0.5' or "
            "'adaptive'; see the 'strategies' command"
        ),
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker processes for the sweep (default: serial)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=list(EXECUTOR_IDS),
        help=(
            "execution strategy for sweep figures: 'serial' (in-process), "
            "'pool' (worker processes, honours --processes), or 'queue' "
            "(file-backed persistent queue with in-flight dedup; requires "
            "--queue-dir); default: serial, or pool when --processes >= 2"
        ),
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory backing the 'queue' executor (pending/, inflight/ "
            "and results/ live under it; survives crashes and dedups "
            "repeated submissions of the same point)"
        ),
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=None,
        metavar="N",
        help="slice each sweep figure to its first N points",
    )
    parser.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the qualitative shape checks",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also draw an ASCII chart of each figure",
    )
    parser.add_argument(
        "--save-json",
        default=None,
        metavar="DIR",
        help="archive each regenerated figure as JSON in this directory",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "journal every completed point to DIR/<figure_id>.journal.jsonl "
            "so an interrupted sweep can be resumed"
        ),
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "resume from an existing checkpoint journal (default); "
            "--no-resume discards it and starts fresh"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="times a failed or hung point is retried (with backoff)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="initial backoff before a retry; doubles per attempt",
    )
    parser.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock limit per point attempt; hung workers are killed "
            "and retried (requires --processes >= 2)"
        ),
    )
    parser.add_argument(
        "--wall-clock-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="real-time budget per replication inside the simulator",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "content-addressed result cache shared across runs; points "
            "whose (backend, params, plan, seed) were already evaluated "
            "are reused instead of re-simulated"
        ),
    )
    parser.add_argument(
        "--backend-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock deadline per backend evaluation attempt; enables "
            "the resilient backend wrapper (see docs/RESILIENCE.md)"
        ),
    )
    parser.add_argument(
        "--backend-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retries per backend evaluation with derived seeds and "
            "backoff (enables the resilient backend wrapper)"
        ),
    )
    parser.add_argument(
        "--degrade-to",
        action="append",
        default=None,
        metavar="BACKEND",
        help=(
            "fallback backend chain when the primary is exhausted "
            "(repeatable, in order; enables the resilient backend wrapper)"
        ),
    )
    parser.add_argument(
        "--backend-isolation",
        choices=["none", "process"],
        default=None,
        help=(
            "run each evaluation in a disposable subprocess so a hard "
            "hang is killable at the deadline (default: in-process, "
            "cooperative deadline only)"
        ),
    )
    parser.add_argument(
        "--breaker-state-dir",
        default=None,
        metavar="DIR",
        help=(
            "write per-backend circuit-breaker state files to DIR; "
            "render them with 'backends --state-dir DIR'"
        ),
    )
    parser.add_argument(
        "--kernel-stats",
        action="store_true",
        help=(
            "print aggregated simulation-kernel counters (heap traffic, "
            "enabling checks avoided, events/sec) after the sweep; "
            "forces a serial sweep (worker processes do not report stats)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write the process metrics registry (counters, gauges, "
            "timings) as JSON to PATH after the run; render it later "
            "with the 'obs' command"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "export SAN firings and cluster protocol events as JSON "
            "lines to PATH; forces a serial sweep (worker processes do "
            "not share the sink)"
        ),
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="with --trace-out: keep one event in every N per kind",
    )
    parser.add_argument(
        "--trace-max-events",
        type=int,
        default=None,
        metavar="N",
        help="with --trace-out: stop writing after N kept events",
    )


def _backend_resilience_from_args(args: argparse.Namespace):
    """A :class:`~repro.resilience.BackendResilienceOptions` from the
    ``--backend-*`` / ``--degrade-to`` flags, or ``None`` when none of
    them was given (the wrapper stays out of the way by default)."""
    deadline = getattr(args, "backend_deadline", None)
    retries = getattr(args, "backend_retries", None)
    degrade_to = getattr(args, "degrade_to", None)
    isolation = getattr(args, "backend_isolation", None)
    state_dir = getattr(args, "breaker_state_dir", None)
    values = (deadline, retries, degrade_to, isolation, state_dir)
    if all(value is None for value in values):
        return None

    from ..resilience import (
        BackendResilienceOptions,
        DegradationPolicy,
        RetryPolicy as BackendRetryPolicy,
    )

    kwargs = {}
    if deadline is not None:
        kwargs["deadline"] = deadline
    if retries is not None:
        kwargs["retry"] = BackendRetryPolicy(max_retries=retries)
    if degrade_to:
        kwargs["degradation"] = DegradationPolicy(chain=tuple(degrade_to))
    if isolation is not None:
        kwargs["isolation"] = isolation
    if state_dir is not None:
        kwargs["state_dir"] = state_dir
    return BackendResilienceOptions(**kwargs)


def _resilience_from_args(args: argparse.Namespace):
    from .resilience import ResilienceOptions, RetryPolicy

    return ResilienceOptions(
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        resume=getattr(args, "resume", True),
        retry=RetryPolicy(
            max_retries=getattr(args, "retries", 2),
            backoff_base=getattr(args, "retry_backoff", 0.5),
        ),
        point_timeout=getattr(args, "point_timeout", None),
        wall_clock_budget=getattr(args, "wall_clock_budget", None),
        cache_dir=getattr(args, "cache_dir", None),
        backend_resilience=_backend_resilience_from_args(args),
    )


def _run_one(figure_id: str, args: argparse.Namespace, stream) -> bool:
    from ..obs import trace as obs_trace
    from ..obs import metrics as obs_metrics
    from ..san import profiling

    runner = FIGURE_RUNNERS[figure_id]
    processes = args.processes
    kernel_stats = getattr(args, "kernel_stats", False)
    trace_out = getattr(args, "trace_out", None)
    if kernel_stats or trace_out:
        if processes not in (None, 1):
            flag = "--kernel-stats" if kernel_stats else "--trace-out"
            print(f"{flag} forces a serial sweep (ignoring --processes)")
        processes = None
    if kernel_stats:
        profiling.enable_aggregation(reset=True)
    sink = None
    previous_sink = None
    if trace_out:
        sink = obs_trace.JsonlTraceSink(
            trace_out,
            sample_every=getattr(args, "trace_sample", 1),
            max_events=getattr(args, "trace_max_events", None),
        )
        previous_sink = obs_trace.set_default_sink(sink)
    started = time.time()
    try:
        figure = runner(
            preset=args.preset,
            seed=args.seed,
            processes=processes,
            resilience=_resilience_from_args(args),
            backend=getattr(args, "backend", None),
            kernel=getattr(args, "kernel", None),
            batch_size=getattr(args, "batch_size", None),
            strategy=getattr(args, "strategy", None),
            executor=getattr(args, "executor", None),
            queue_dir=getattr(args, "queue_dir", None),
            max_points=getattr(args, "max_points", None),
        )
    finally:
        stats = profiling.aggregated() if kernel_stats else None
        if kernel_stats:
            profiling.disable_aggregation()
        if sink is not None:
            obs_trace.set_default_sink(previous_sink)
            sink.close()
    elapsed = time.time() - started
    if stats is not None:
        print(stats.summary())
    if sink is not None:
        offered = sum(sink.offered.values())
        print(
            f"trace: {sink.written} of {offered} offered event(s) "
            f"written to {sink.path}"
        )
    print(render_figure(figure))
    if getattr(args, "chart", False):
        print()
        print(render_ascii_chart(figure))
    print(f"({elapsed:.1f} s, preset={args.preset})")
    ok = not figure.failures
    for report in figure.failures:
        print(f"point failure: {report.summary()}")
    if not args.no_validate:
        for check in validate_figure(figure):
            print(str(check))
            ok = ok and check.passed
    if stream is not None:
        write_markdown_section(figure, stream)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        import json as _json

        parent = os.path.dirname(metrics_out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(metrics_out, "w", encoding="utf-8") as handle:
            _json.dump(
                obs_metrics.registry().snapshot(), handle,
                indent=2, sort_keys=True,
            )
            handle.write("\n")
        print(f"metrics written to {metrics_out}")
    if getattr(args, "save_json", None):
        from ..obs import manifest_path
        from .archive import save_figure

        save_figure(figure, args.save_json)
        if figure.manifest is not None:
            print(
                "manifest written to "
                f"{manifest_path(args.save_json, figure.figure_id)}"
            )
    print()
    return ok


def _obs_command(path: str, as_json: bool = False) -> int:
    """Validate and render manifests / metrics snapshots at ``path``.

    A directory renders every ``*.manifest.json`` and every
    ``*.metrics.json`` inside it (the latter is what service workers
    and job submitters leave under ``<queue_dir>/obs/``); a
    ``.manifest.json`` file renders that manifest; any other JSON file
    is treated as a metrics snapshot written by ``--metrics-out``.
    Returns 0 when everything validated, 1 otherwise.
    """
    import json
    import os

    from ..obs import (
        ManifestError,
        load_manifest,
        render_manifest,
        render_metrics_snapshot,
    )

    def render_one_manifest(manifest_file: str) -> bool:
        try:
            manifest = load_manifest(manifest_file)
        except ManifestError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return False
        if as_json:
            print(json.dumps(manifest.to_json_dict(), indent=2, sort_keys=True))
        else:
            print(render_manifest(manifest))
        return True

    def render_one_snapshot(snapshot_file: str, named: bool = False) -> bool:
        try:
            with open(snapshot_file, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {snapshot_file!r}: {exc}",
                  file=sys.stderr)
            return False
        if not isinstance(payload, dict) or "counters" not in payload:
            print(
                f"error: {snapshot_file!r} is neither a run manifest nor a "
                "metrics snapshot (no 'counters' key)",
                file=sys.stderr,
            )
            return False
        if as_json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return True
        if named:
            print(f"metrics: {os.path.basename(snapshot_file)}")
        rendered = render_metrics_snapshot(payload)
        if rendered:
            print(rendered)
        return True

    if os.path.isdir(path):
        names = sorted(os.listdir(path))
        manifest_files = [
            os.path.join(path, name)
            for name in names
            if name.endswith(".manifest.json")
        ]
        metrics_files = [
            os.path.join(path, name)
            for name in names
            if name.endswith(".metrics.json")
        ]
        if not manifest_files and not metrics_files:
            print(
                f"error: no *.manifest.json or *.metrics.json files in "
                f"{path!r}",
                file=sys.stderr,
            )
            return 1
        ok = True
        first = True
        for manifest_file in manifest_files:
            if not first and not as_json:
                print()
            first = False
            ok = render_one_manifest(manifest_file) and ok
        for metrics_file in metrics_files:
            if not first and not as_json:
                print()
            first = False
            ok = render_one_snapshot(metrics_file, named=True) and ok
        return 0 if ok else 1

    if path.endswith(".manifest.json"):
        return 0 if render_one_manifest(path) else 1

    # A metrics snapshot (the --metrics-out format).
    return 0 if render_one_snapshot(path) else 1


def _worker_command(args: argparse.Namespace) -> int:
    """The ``worker`` subcommand: run one queue drainer until
    signalled (or idle-exit / max-tasks)."""
    from ..service import ServiceWorker
    from ..exec.queue import INFLIGHT_SWEEP_AGE_SECONDS

    worker = ServiceWorker(
        args.queue_dir,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        idle_exit=args.idle_exit,
        max_tasks=args.max_tasks,
        orphan_age=(
            args.orphan_age
            if args.orphan_age is not None
            else INFLIGHT_SWEEP_AGE_SECONDS
        ),
        point_timeout=args.point_timeout,
        backend_resilience=_backend_resilience_from_args(args),
    )
    worker.install_signal_handlers()
    print(
        f"worker {worker.worker_id} draining {args.queue_dir} "
        f"(poll {args.poll_interval:g}s"
        + (f", idle-exit {args.idle_exit:g}s" if args.idle_exit else "")
        + ")"
    )
    executed = worker.run()
    print(
        f"worker {worker.worker_id} exiting: {executed} task(s) executed, "
        f"{worker.failed} failed"
    )
    return 0


def _job_command(args: argparse.Namespace) -> int:
    """The ``job`` subcommand: submit / status / collect.

    Exit codes: 0 success (status: job done, or a non---wait poll),
    1 job not done in time (--wait) or figure-level failure, 2
    operational error (unknown figure, unfinished collect, bad
    record).
    """
    from ..service import JobError, collect_job, job_status, submit_job

    if args.job_command == "submit":
        try:
            record = submit_job(
                args.queue_dir,
                args.figure,
                preset=args.preset,
                seed=args.seed,
                max_points=args.max_points,
                priority=args.priority,
                tenant=args.tenant,
                name=args.name,
                backend=args.backend,
                cache_dir=args.cache_dir,
            )
        except JobError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        queued = record.submitted - record.served_from_cache - record.coalesced
        print(record.job_id)
        print(
            f"submitted {record.submitted} point(s) for tenant "
            f"{record.tenant!r}: {queued} queued, "
            f"{record.served_from_cache} already answered, "
            f"{record.coalesced} coalesced with queued work",
            file=sys.stderr,
        )
        return 0

    if args.job_command == "status":
        import json as _json

        try:
            status = job_status(args.queue_dir, args.job_id)
            if args.wait:
                deadline = time.time() + args.timeout
                while not status.finished and time.time() < deadline:
                    time.sleep(args.poll_interval)
                    status = job_status(args.queue_dir, args.job_id)
        except JobError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(_json.dumps(status.to_json_dict(), indent=2, sort_keys=True))
        else:
            print(status.render())
        if args.wait and not status.finished:
            print(
                f"error: job {args.job_id} not finished after "
                f"{args.timeout:g}s",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.job_command == "collect":
        try:
            figure = collect_job(args.queue_dir, args.job_id)
        except JobError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_figure(figure))
        if args.save_json:
            from .archive import save_figure

            path = save_figure(figure, args.save_json)
            print(f"archived to {path}", file=sys.stderr)
        return 0

    raise AssertionError(f"unhandled job command {args.job_command!r}")


def _cache_command(args: argparse.Namespace) -> int:
    """The ``cache`` subcommand (currently: ``prune``)."""
    from ..backends.cache import ResultCache

    if args.cache_command == "prune":
        try:
            summary = ResultCache(args.cache_dir).prune(args.max_bytes)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"cache {args.cache_dir}: {summary['entries_removed']} of "
            f"{summary['entries_before']} entry(ies) evicted "
            f"({summary['bytes_removed']} of {summary['bytes_before']} "
            f"bytes); {summary['bytes_after']} bytes remain "
            f"(budget {args.max_bytes})"
        )
        return 0

    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _validate_command(args: argparse.Namespace) -> int:
    """The ``validate`` subcommand: run / record / check / list.

    Exit codes follow the run-figure convention: 0 all green, 1 a
    validation failure (a DISAGREE, a failed GOF null, a baseline
    drift), 2 an operational error (backend failure, missing or
    foreign-schema baseline).
    """
    import json as _json

    from ..validate import (
        BaselineError,
        check_baselines,
        default_cases,
        filter_cases_by_backends,
        parse_perturbation,
        record_baselines,
        run_full_suite,
    )

    case_names = (
        [name.strip() for name in args.cases.split(",") if name.strip()]
        if args.cases
        else None
    )
    backend_filter = (
        [name.strip() for name in args.backends.split(",") if name.strip()]
        if getattr(args, "backends", None)
        else None
    )
    cases = default_cases(args.scale)
    if case_names:
        known = {case.name for case in cases}
        unknown = sorted(set(case_names) - known)
        if unknown:
            print(
                f"error: unknown case(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
        cases = [case for case in cases if case.name in case_names]
    if backend_filter is not None:
        try:
            cases = filter_cases_by_backends(cases, backend_filter)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.list_cases:
        for case in cases:
            print(f"{case.name}: {case.description}")
        return 0

    if args.record and args.check:
        print("error: --record and --check are mutually exclusive",
              file=sys.stderr)
        return 2

    try:
        if args.record:
            seeds = args.seeds if args.seeds else [0, 1]
            paths = record_baselines(cases, seeds, args.baselines)
            for path in paths:
                print(f"recorded {path}")
            print(f"{len(paths)} baseline(s) at seeds {seeds}")
            return 0

        if args.check:
            checks = check_baselines(cases, args.baselines, seeds=args.seeds)
            for point in checks:
                print(str(point))
            drifted = [point for point in checks if not point.ok]
            if drifted:
                print(f"{len(drifted)} of {len(checks)} point(s) drifted")
                return 1
            print(f"all {len(checks)} point(s) within tolerance")
            return 0

        perturb = parse_perturbation(args.perturb) if args.perturb else None
        seed = args.seeds[0] if args.seeds else 0
        report = run_full_suite(
            seed=seed,
            scale=args.scale,
            perturb=perturb,
            include_gof=not args.skip_gof,
            include_metamorphic=not args.skip_metamorphic,
            include_differential=not args.skip_differential,
            case_names=case_names,
            backends=backend_filter,
        )
        if args.json:
            print(_json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        return 0 if report.passed else 1
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _chaos_command(args: argparse.Namespace) -> int:
    """The ``chaos`` subcommand: run a figure clean and faulted.

    Exit codes: 0 when the faulted run recovered (archives agree), 1
    when they disagree, 2 on an operational error (unknown or custom
    figure, backend failure).
    """
    from .chaos import default_chaos_resilience, run_chaos
    from .faultinject import BackendFaultPlan
    from .figures import FIGURE_SPECS

    spec = FIGURE_SPECS.get(args.figure)
    if spec is None or spec.custom is not None:
        eligible = sorted(
            fid for fid, s in FIGURE_SPECS.items() if s.custom is None
        )
        print(
            f"error: chaos needs a sweep figure, not {args.figure!r}; "
            f"choose from: {', '.join(eligible)}",
            file=sys.stderr,
        )
        return 2
    try:
        fault_plan = BackendFaultPlan(
            backend_id=spec.backend,
            crash_fraction=args.crash,
            crash_attempts=None,
            hang_fraction=args.hang,
            hang_attempts=None,
            hang_seconds=args.hang_seconds,
            slow_fraction=args.slow,
            slow_seconds=args.slow_seconds,
            corrupt_fraction=args.corrupt,
            salt=args.fault_salt,
        )
        degrade_to = (
            tuple(args.degrade_to)
            if args.degrade_to
            else (("san-sim-full",) if spec.backend == "san-sim" else ())
        )
        options = default_chaos_resilience(
            spec.backend,
            fault_plan,
            deadline=args.deadline,
            retries=args.retries,
            degrade_to=degrade_to,
            state_dir=args.state_dir,
        )
        outcome = run_chaos(
            args.figure,
            preset=args.preset,
            seed=args.seed,
            scale=args.scale,
            max_points=args.max_points,
            fault_plan=fault_plan,
            options=options,
            tolerance=args.tolerance,
            out_dir=args.out,
            executor=args.executor,
            queue_dir=args.queue_dir,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print("\n".join(outcome.summary_lines()))
    return 0 if outcome.recovered else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for figure_id in FIGURE_IDS:
            print(figure_id)
        return 0

    if args.command == "backends":
        state_dir = getattr(args, "state_dir", None)
        for backend in all_backends():
            caps = backend.capabilities
            flavor = "exact" if caps.exact else (
                "deterministic" if caps.deterministic else "stochastic"
            )
            print(f"{backend.id}  (v{backend.backend_version}, {flavor})")
            print(f"    metrics: {', '.join(sorted(caps.metrics))}")
            if caps.max_nodes is not None:
                print(f"    max nodes: {caps.max_nodes}")
            print(f"    {caps.description}")
            if state_dir is not None:
                from ..resilience import breaker_state_path, load_breaker_state

                state = load_breaker_state(
                    breaker_state_path(state_dir, backend.id)
                )
                if state is None:
                    print("    breaker: no state recorded")
                else:
                    line = (
                        f"    breaker: {state.get('state')} "
                        f"(consecutive failures: "
                        f"{state.get('consecutive_failures', 0)}, "
                        f"calls seen: {state.get('calls_seen', 0)})"
                    )
                    print(line)
                    if state.get("last_error"):
                        print(f"    last error: {state['last_error']}")
        return 0

    if args.command == "strategies":
        from ..strategies import all_strategies

        for strategy in all_strategies():
            caps = strategy.capabilities
            print(f"{strategy.id}  (v{strategy.strategy_version})")
            if caps.parameters:
                defaults = strategy.params_dict()
                rendered = ", ".join(
                    f"{name}={defaults[name]!r}" if name in defaults else name
                    for name in caps.parameters
                )
                print(f"    parameters: {rendered}")
            print(f"    {caps.description}")
            if caps.reduction:
                print(f"    flat reduction: {caps.reduction}")
        return 0

    if args.command == "table3":
        print(render_table3())
        return 0

    if args.command == "obs":
        return _obs_command(args.path, as_json=args.json)

    if args.command == "worker":
        try:
            return _worker_command(args)
        except (BackendError, ExecutorError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "job":
        try:
            return _job_command(args)
        except (BackendError, ExecutorError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "cache":
        return _cache_command(args)

    if args.command == "validate":
        try:
            return _validate_command(args)
        except BackendError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "chaos":
        try:
            return _chaos_command(args)
        except (BackendError, ExecutorError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "run-figure":
        try:
            ok = _run_one(args.figure, args, stream=None)
        except (BackendError, ExecutorError, StrategyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0 if ok else 1

    if args.command == "dot":
        from ..core import ModelParameters, build_system
        from ..san import to_dot

        system = build_system(ModelParameters(timeout=60.0))
        print(to_dot(system.model, graph_name="coordinated_checkpointing",
                     group_by_submodel=not args.no_clusters))
        return 0

    if args.command == "claims":
        from .archive import load_archive
        from .paper_claims import evaluate_claims, render_claims

        figures = load_archive(args.from_json) if args.from_json else None
        outcomes = evaluate_claims(
            preset=args.preset, seed=args.seed, figures=figures
        )
        print(render_claims(outcomes))
        return 0 if all(outcome.holds for outcome in outcomes) else 1

    if args.command == "compare":
        from .archive import compare_archives

        discrepancies = compare_archives(
            args.reference, args.candidate, rel_tolerance=args.tolerance
        )
        for discrepancy in discrepancies:
            print(str(discrepancy))
        if discrepancies:
            print(f"{len(discrepancies)} discrepancies")
            return 1
        print("archives agree")
        return 0

    if args.command == "design":
        from ..analytical.design import DesignSpec, explore
        from ..core.parameters import MINUTE, YEAR

        spec = DesignSpec(
            processors_per_node=args.processors_per_node,
            mttf_node=args.mttf_years * YEAR,
            mttr=args.mttr_minutes * MINUTE,
            blocking_overhead=args.overhead_seconds,
        )
        print("rank  processors  interval     predicted UWF   predicted TUW")
        for rank, point in enumerate(explore(spec), start=1):
            print(
                f"{rank:>4}  {point.n_processors:>10}  "
                f"{point.interval / MINUTE:6.1f} min   "
                f"{point.useful_work_fraction:13.3f}   "
                f"{point.total_useful_work:13.0f}"
            )
        return 0

    if args.command == "sensitivity":
        from ..analytical.sensitivity import OperatingPoint, rank_parameters
        from ..core.parameters import MINUTE, YEAR

        n_nodes = args.processors / args.processors_per_node
        point = OperatingPoint(
            interval=args.interval_minutes * MINUTE,
            overhead=args.overhead_seconds,
            mtbf=args.mttf_years * YEAR / n_nodes,
            mttr=args.mttr_minutes * MINUTE,
        )
        print(f"operating point: UWF = {point.uwf():.4f} "
              f"({args.processors} processors, system MTBF "
              f"{point.mtbf / MINUTE:.1f} min)")
        print("elasticity of UWF (d ln UWF / d ln parameter):")
        for elasticity in rank_parameters(point):
            print(f"  {elasticity.parameter:<9} {elasticity.value:+8.4f}  "
                  f"(UWF improves if you {elasticity.beneficial_direction} it)")
        return 0

    if args.command == "completion":
        from ..core import ModelParameters, completion_study
        from ..core.parameters import HOUR, YEAR

        params = ModelParameters(
            n_processors=args.processors, mttf_node=args.mttf_years * YEAR
        )
        study = completion_study(
            params,
            args.work_hours,
            replications=args.replications,
            seed=args.seed,
        )
        print(f"job: {args.work_hours:g} h of work on {args.processors} processors")
        if study.times:
            print(f"mean completion: {study.mean_time.mean / HOUR:.1f} h "
                  f"(± {study.mean_time.half_width / HOUR:.1f} h)")
            print(f"p10/p90: {study.percentile(10) / HOUR:.1f} h / "
                  f"{study.percentile(90) / HOUR:.1f} h")
            print(f"mean stretch: {study.mean_stretch:.2f}")
        if study.incomplete:
            print(f"incomplete replications: {study.incomplete}")
        return 0

    if args.command == "run-all":
        stream = io.StringIO()
        all_ok = True
        print(render_table3())
        print()
        for figure_id in sorted(FIGURE_RUNNERS):
            try:
                all_ok = _run_one(figure_id, args, stream) and all_ok
            except (BackendError, ExecutorError, StrategyError) as exc:
                print(f"error: {figure_id}: {exc}\n", file=sys.stderr)
                all_ok = False
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write("# Regenerated evaluation\n\n")
                handle.write(stream.getvalue())
            print(f"wrote {args.output}")
        return 0 if all_ok else 1

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
