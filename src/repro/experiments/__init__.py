"""The evaluation harness: regenerate every table and figure.

Programmatic use::

    from repro.experiments import figures, render_figure, validate_figure
    result = figures.figure_4a(preset="quick", seed=1)
    print(render_figure(result))
    for check in validate_figure(result):
        print(check)

Command line: ``python -m repro run-figure fig4a --preset quick``.
"""

from . import figures
from .config import FIGURE_IDS, PRESETS, base_parameters, plan_for
from .figures import FIGURE_RUNNERS, FIGURE_SPECS, run_figure
from .specs import FigureSpec
from .report import (
    figure_to_json,
    render_ascii_chart,
    render_figure,
    render_table3,
)
from .archive import (
    FIGURE_SCHEMA_VERSION,
    Discrepancy,
    compare_archives,
    compare_figures,
    load_archive,
    load_figure,
    save_archive,
    save_figure,
)
from .chaos import ChaosOutcome, run_chaos
from .faultinject import (
    BackendFaultPlan,
    FaultPlan,
    InjectedBackendFault,
    InjectedCrash,
    SweepAborted,
)
from .paper_claims import CLAIMS, Claim, ClaimOutcome, evaluate_claims, render_claims
from .resilience import (
    CheckpointError,
    CheckpointJournal,
    FailureReport,
    ResilienceOptions,
    RetryPolicy,
    SweepSupervisor,
)
from .runner import FigureResult, SweepPoint, run_sweep
from .validation import ShapeCheck, validate_figure

__all__ = [
    "figures",
    "FIGURE_RUNNERS",
    "FIGURE_SPECS",
    "FigureSpec",
    "run_figure",
    "FIGURE_IDS",
    "PRESETS",
    "base_parameters",
    "plan_for",
    "FigureResult",
    "SweepPoint",
    "run_sweep",
    "render_figure",
    "render_ascii_chart",
    "render_table3",
    "figure_to_json",
    "ShapeCheck",
    "validate_figure",
    "FIGURE_SCHEMA_VERSION",
    "save_figure",
    "load_figure",
    "save_archive",
    "load_archive",
    "compare_figures",
    "compare_archives",
    "Discrepancy",
    "CLAIMS",
    "Claim",
    "ClaimOutcome",
    "evaluate_claims",
    "render_claims",
    "ResilienceOptions",
    "RetryPolicy",
    "FailureReport",
    "CheckpointJournal",
    "CheckpointError",
    "SweepSupervisor",
    "FaultPlan",
    "BackendFaultPlan",
    "InjectedCrash",
    "InjectedBackendFault",
    "SweepAborted",
    "ChaosOutcome",
    "run_chaos",
]
