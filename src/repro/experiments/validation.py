"""Shape assertions: the reproduction criteria.

Absolute job-unit magnitudes depend on the substrate; what must hold
are the paper's qualitative conclusions. Each check returns a
:class:`ShapeCheck` (pass/fail plus an explanation) so the benchmark
suite and the CLI can report precisely which claim held or broke.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .runner import FigureResult

__all__ = [
    "ShapeCheck",
    "has_interior_maximum",
    "is_monotone_decreasing",
    "peak_shifts_left",
    "relative_drop",
    "flat_then_falling",
    "validate_figure",
]


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of one qualitative assertion."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        return f"[{marker}] {self.name}: {self.detail}"


def has_interior_maximum(xs: Sequence[float], ys: Sequence[float], name: str) -> ShapeCheck:
    """The curve peaks strictly inside the grid (the paper's "optimum
    number of processors" claim)."""
    if len(xs) != len(ys) or len(xs) < 3:
        raise ValueError("need matching xs/ys with at least 3 points")
    peak = max(range(len(ys)), key=lambda i: ys[i])
    interior = 0 < peak < len(ys) - 1
    return ShapeCheck(
        name,
        interior,
        f"peak at x={xs[peak]:g} (index {peak} of 0..{len(ys) - 1})",
    )


def is_monotone_decreasing(
    xs: Sequence[float], ys: Sequence[float], name: str, tolerance: float = 0.0
) -> ShapeCheck:
    """y never rises by more than ``tolerance`` (relative) along x."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need matching xs/ys with at least 2 points")
    violations = [
        (xs[i], xs[i + 1])
        for i in range(len(ys) - 1)
        if ys[i + 1] > ys[i] * (1.0 + tolerance)
    ]
    return ShapeCheck(
        name,
        not violations,
        "monotone decreasing" if not violations else f"rises at {violations}",
    )


def peak_shifts_left(
    figure: FigureResult, ordered_labels: Sequence[str], name: str
) -> ShapeCheck:
    """The optimum x must not move right as the stress parameter grows
    (smaller MTTF / larger MTTR / larger interval all shift the
    optimum processor count down)."""
    peaks = [figure.peak_x(label) for label in ordered_labels]
    ok = all(peaks[i + 1] <= peaks[i] for i in range(len(peaks) - 1))
    detail = ", ".join(
        f"{label}: {peak:g}" for label, peak in zip(ordered_labels, peaks)
    )
    return ShapeCheck(name, ok, detail)


def relative_drop(before: float, after: float) -> float:
    """Fractional decrease from ``before`` to ``after``."""
    if before <= 0:
        raise ValueError(f"before must be > 0, got {before}")
    return (before - after) / before


def flat_then_falling(
    xs: Sequence[float],
    ys: Sequence[float],
    name: str,
    knee: float,
    flat_tolerance: float = 0.15,
    fall_minimum: float = 0.15,
) -> ShapeCheck:
    """The paper's Figure 4b/4f claim: roughly constant up to the knee
    (15–30 min), then a pronounced fall.

    ``flat_tolerance`` bounds the allowed relative change before the
    knee; ``fall_minimum`` is the required relative drop from the knee
    to the last point.
    """
    if len(xs) != len(ys) or len(xs) < 3:
        raise ValueError("need matching xs/ys with at least 3 points")
    knee_index = max(i for i, x in enumerate(xs) if x <= knee)
    head = ys[: knee_index + 1]
    flat = (max(head) - min(head)) <= flat_tolerance * max(head)
    fall = relative_drop(ys[knee_index], ys[-1]) >= fall_minimum
    return ShapeCheck(
        name,
        flat and fall,
        f"head variation {(max(head) - min(head)) / max(head):.2%}, "
        f"drop past knee {relative_drop(ys[knee_index], ys[-1]):.2%}",
    )


def _expects_interior_peak(figure_id: str, label: str) -> bool:
    """Whether the paper shows an interior optimum for this curve.

    Lightly-stressed configurations are still rising at the grid's
    right edge in the paper too (e.g. MTTF = 2 yr in Figure 4a, the
    15-minute interval in Figure 4e), so the interior-peak claim only
    applies to the stressed curves.
    """
    value = None
    if "=" in label:
        try:
            value = float(label.rsplit("=", 1)[1])
        except ValueError:
            value = None
    if figure_id in ("fig4a", "section7.1"):
        return value is not None and value <= 1.0  # MTTF in years
    if figure_id == "fig4c":
        return True  # every MTTR (10-80 min) peaks inside 8K-256K
    if figure_id == "fig4e":
        return value is not None and value >= 30.0  # interval in minutes
    return True


def _expects_flat_head(figure_id: str, label: str) -> bool:
    """Whether the paper shows the "flat 15-30 min, then falling"
    shape for this curve (moderately-stressed configurations only)."""
    value = None
    if "=" in label:
        try:
            value = float(label.rsplit("=", 1)[1])
        except ValueError:
            value = None
    if figure_id == "fig4b":
        return value is not None and value <= 65536  # processors
    if figure_id == "fig4f":
        return value is not None and value <= 8  # MTTF in years
    return True


def validate_figure(figure: FigureResult) -> List[ShapeCheck]:
    """The built-in checks for each known figure id."""
    checks: List[ShapeCheck] = []
    fid = figure.figure_id
    if fid in ("fig4a", "fig4c", "fig4e", "section7.1"):
        for label, points in figure.series.items():
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            if len(points) >= 3 and _expects_interior_peak(fid, label):
                checks.append(has_interior_maximum(xs, ys, f"{fid}/{label} optimum"))
    if fid in ("fig4b", "fig4d", "fig4f"):
        for label, points in figure.series.items():
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            if not _expects_flat_head(fid, label):
                # Outside the moderately-stressed regime the paper's
                # own curves are not flat either: extremely stressed
                # systems fall from the first interval, and lightly
                # stressed ones barely fall at all. Assert the shared
                # weaker claim: nothing beats frequent checkpoints.
                best = max(ys)
                checks.append(
                    ShapeCheck(
                        f"{fid}/{label} frequent checkpoints win",
                        max(ys[0], ys[1]) >= 0.95 * best,
                        f"best at x={xs[ys.index(best)]:g}",
                    )
                )
                continue
            checks.append(
                flat_then_falling(xs, ys, f"{fid}/{label} flat-then-falling", knee=30)
            )
    if fid == "fig5":
        for label, points in figure.series.items():
            xs = [p[0] for p in points]
            ys = [p[1] for p in points]
            checks.append(
                is_monotone_decreasing(
                    xs, ys, f"{fid}/{label} logarithmic decline", tolerance=0.01
                )
            )
    if fid == "fig8":
        without = {p[0]: p[1] for p in figure.series.get("without correlated failure", [])}
        with_cf = {p[0]: p[1] for p in figure.series.get("with correlated failure", [])}
        shared = sorted(set(without) & set(with_cf))
        if shared:
            largest = shared[-1]
            drop = relative_drop(without[largest], with_cf[largest])
            checks.append(
                ShapeCheck(
                    "fig8 correlated degradation at scale",
                    drop >= 0.2,
                    f"UWF drop at {int(largest)} processors: {drop:.2%} (paper: ~51%)",
                )
            )
    if fid == "fig7":
        values = [
            p[1] for points in figure.series.values() for p in points
        ]
        if values:
            spread = (max(values) - min(values)) / max(values)
            checks.append(
                ShapeCheck(
                    "fig7 insensitivity to propagation-correlated failures",
                    spread <= 0.25,
                    f"UWF spread across all p_e and r: {spread:.2%} "
                    f"(paper band: 0.51-0.56, ~9%)",
                )
            )
    return checks
