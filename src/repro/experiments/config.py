"""Experiment presets and the per-figure parameter grids.

Every figure of the paper's evaluation (Section 7) is described here
as data: the x-axis grid, the series, and the configuration each point
runs. Three presets trade accuracy for time:

* ``quick`` — benchmark-suite scale (minutes for everything);
* ``standard`` — faithful shapes with tight-enough intervals;
* ``full`` — publication-scale runs.

The paper's simulations use a 1000-hour transient; this model reaches
steady state far faster (its slowest relaxation is the recovery/reboot
path, minutes to hours), so shorter transients with longer measured
windows give the same steady-state estimates at lower cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.parameters import HOUR, MINUTE, YEAR, CoordinationMode, ModelParameters
from ..core.simulation import SimulationPlan

__all__ = [
    "PRESETS",
    "plan_for",
    "PROCESSOR_GRID",
    "INTERVAL_GRID_MIN",
    "FIGURE_IDS",
    "base_parameters",
]

#: The paper's processor-count grid (Figures 4a–4f, 6, 8).
PROCESSOR_GRID: Tuple[int, ...] = (8192, 16384, 32768, 65536, 131072, 262144)

#: The paper's checkpoint-interval grid in minutes (Figures 4b/4d/4f).
INTERVAL_GRID_MIN: Tuple[int, ...] = (15, 30, 60, 120, 240)

#: Every experiment the harness can regenerate.
FIGURE_IDS: Tuple[str, ...] = (
    "table3",
    "section7.1",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig4d",
    "fig4e",
    "fig4f",
    "fig4g",
    "fig4h",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig3",
    "coordination-law",
    "strategy-compare",
)

PRESETS: Dict[str, SimulationPlan] = {
    "quick": SimulationPlan(warmup=20 * HOUR, observation=150 * HOUR, replications=2),
    "standard": SimulationPlan(
        warmup=100 * HOUR, observation=1000 * HOUR, replications=3
    ),
    "full": SimulationPlan(warmup=200 * HOUR, observation=3000 * HOUR, replications=5),
}


def plan_for(preset: str) -> SimulationPlan:
    """The :class:`SimulationPlan` of a named preset."""
    try:
        return PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown preset {preset!r}; choose from {sorted(PRESETS)}"
        ) from None


def base_parameters() -> ModelParameters:
    """The paper's base-model configuration (Section 7.1)."""
    return ModelParameters(
        n_processors=65536,
        processors_per_node=8,
        checkpoint_interval=30 * MINUTE,
        mttf_node=1 * YEAR,
        mttr=10 * MINUTE,
        mttq=10.0,
        coordination_mode=CoordinationMode.FIXED,
        timeout=None,
    )
