"""The paper's claims as executable checks.

EXPERIMENTS.md records the paper-vs-measured comparison as prose; this
module makes the comparison *executable*: each :class:`Claim` names a
claim the paper makes, the figure it rests on, the value the paper
reports, and a function that extracts the measured counterpart and
judges it. ``python -m repro claims`` regenerates the needed figures
once and prints the verdict table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .figures import FIGURE_RUNNERS
from .runner import FigureResult

__all__ = ["Claim", "ClaimOutcome", "CLAIMS", "evaluate_claims", "render_claims"]

#: A check returns (measured description, holds?).
CheckFunction = Callable[[FigureResult], Tuple[str, bool]]


@dataclass(frozen=True)
class Claim:
    """One claim the paper makes about its results."""

    claim_id: str
    figure_id: str
    description: str
    paper_value: str
    check: CheckFunction


@dataclass(frozen=True)
class ClaimOutcome:
    """The verdict on one claim."""

    claim: Claim
    measured: str
    holds: bool

    def __str__(self) -> str:
        marker = "MATCH" if self.holds else "DIVERGES"
        return (
            f"[{marker}] {self.claim.claim_id}: {self.claim.description}\n"
            f"          paper: {self.claim.paper_value}\n"
            f"          measured: {self.measured}"
        )


def _optimum_processors(figure: FigureResult) -> Tuple[str, bool]:
    peak = figure.peak_x("MTTF (yrs) = 1")
    return f"peak at {int(peak)} processors", peak == 131072


def _uwf_at_peak(figure: FigureResult) -> Tuple[str, bool]:
    label = "MTTF (yrs) = 1"
    peak_x = figure.peak_x(label)
    points = {x: y for x, y, _ in figure.series[label]}
    fraction = points[peak_x] / peak_x
    return f"UWF {fraction:.3f} at {int(peak_x)} processors", abs(fraction - 0.427) < 0.06


def _below_half_at_peak(figure: FigureResult) -> Tuple[str, bool]:
    label = "MTTF (yrs) = 1"
    peak_x = figure.peak_x(label)
    points = {x: y for x, y, _ in figure.series[label]}
    fraction = points[peak_x] / peak_x
    return f"UWF {fraction:.3f}", fraction < 0.5

def _flat_then_fall_64k(figure: FigureResult) -> Tuple[str, bool]:
    ys = figure.y_values("processors = 65536")
    head_variation = abs(ys[1] - ys[0]) / max(ys[0], ys[1])
    drop = (ys[1] - ys[2]) / ys[1]
    holds = head_variation < 0.15 and drop > 0.1
    return (
        f"15->30 min change {head_variation:.1%}, 30->60 min drop {drop:.1%}",
        holds,
    )


def _no_practical_optimum(figure: FigureResult) -> Tuple[str, bool]:
    # For every system size, the best interval is 15 or 30 minutes.
    winners = []
    for label, points in figure.series.items():
        best_x = max(points, key=lambda p: p[1])[0]
        winners.append(best_x)
    holds = all(x <= 30 for x in winners)
    return f"best intervals: {sorted(set(winners))}", holds


def _optimum_shifts_with_interval(figure: FigureResult) -> Tuple[str, bool]:
    peak_30 = figure.peak_x("chkpt_interval (mins) = 30")
    peak_60 = figure.peak_x("chkpt_interval (mins) = 60")
    return (
        f"peak {int(peak_30)} at 30 min, {int(peak_60)} at 60 min",
        peak_30 == 131072 and peak_60 == 65536,
    )


def _coordination_logarithmic(figure: FigureResult) -> Tuple[str, bool]:
    ys = figure.y_values("MTTQ=10s")
    total_drop = ys[0] - ys[-1]
    # Each 4x step in n costs a roughly constant increment: compare
    # the first-half and second-half drops.
    half = len(ys) // 2
    first = ys[0] - ys[half]
    second = ys[half] - ys[-1]
    holds = total_drop < 0.12 and abs(first - second) < 0.4 * total_drop
    return (
        f"total drop {total_drop:.3f} over 2^30x processors, halves "
        f"{first:.3f}/{second:.3f}",
        holds,
    )


def _small_timeouts_collapse(figure: FigureResult) -> Tuple[str, bool]:
    none = figure.y_values("no timeout")[0]  # 8192 processors
    short = figure.y_values("timeout=20s")[0]
    return f"UWF {none:.3f} without timeout vs {short:.3f} at 20 s", short < 0.5 * none


def _generous_timeout_safe_small(figure: FigureResult) -> Tuple[str, bool]:
    none = figure.y_values("no timeout")[0]
    generous = figure.y_values("timeout=120s")[0]
    return f"UWF {generous:.3f} at 120 s vs {none:.3f}", abs(generous - none) < 0.1


def _propagation_insensitive(figure: FigureResult) -> Tuple[str, bool]:
    values = [y for points in figure.series.values() for _, y, _ in points]
    spread = (max(values) - min(values)) / max(values)
    return f"UWF band {min(values):.3f}-{max(values):.3f}", spread < 0.25


def _generic_drop(figure: FigureResult) -> Tuple[str, bool]:
    without = {x: y for x, y, _ in figure.series["without correlated failure"]}
    with_cf = {x: y for x, y, _ in figure.series["with correlated failure"]}
    drop = without[262144] - with_cf[262144]
    return f"absolute UWF drop {drop:.3f} at 256K processors", abs(drop - 0.24) < 0.1


#: Every executable claim, in paper order.
CLAIMS: List[Claim] = [
    Claim(
        "optimum-processors",
        "fig4a",
        "Optimum processor count at MTTF 1 yr, MTTR 10 min, 30-min interval",
        "~128K (131072)",
        _optimum_processors,
    ),
    Claim(
        "uwf-at-peak",
        "fig4a",
        "Useful work fraction at the optimum",
        "0.427",
        _uwf_at_peak,
    ),
    Claim(
        "below-half",
        "fig4a",
        "Even at the optimum, UWF stays below 50%",
        "< 0.5",
        _below_half_at_peak,
    ),
    Claim(
        "flat-then-fall",
        "fig4b",
        "TUW ~constant for 15-30 min, drops sharply past 30 min (64K procs)",
        "43000 -> 40000 -> 30000 job units",
        _flat_then_fall_64k,
    ),
    Claim(
        "no-practical-optimum",
        "fig4b",
        "No optimal interval within the practical 15 min - 4 h range",
        "true (theoretical optimum < 15 min)",
        _no_practical_optimum,
    ),
    Claim(
        "optimum-vs-interval",
        "fig4e",
        "Optimum processors: 128K at 30-min interval, 64K at 60-min",
        "128K -> 64K",
        _optimum_shifts_with_interval,
    ),
    Claim(
        "coordination-logarithmic",
        "fig5",
        "Coordination cost grows logarithmically in the processor count",
        "UWF 0.97 -> ~0.87 over 1..2^30 (MTTQ 10 s)",
        _coordination_logarithmic,
    ),
    Claim(
        "small-timeouts-hurt",
        "fig6",
        "Small timeouts behave as probabilistic checkpoint-abort",
        "drastic drops for 20-80 s",
        _small_timeouts_collapse,
    ),
    Claim(
        "large-timeouts-safe",
        "fig6",
        "Past a threshold, performance is insensitive to the timeout (8K procs)",
        "~100 s threshold",
        _generous_timeout_safe_small,
    ),
    Claim(
        "propagation-insensitive",
        "fig7",
        "UWF insensitive to error-propagation correlated failures",
        "0.51-0.56 band",
        _propagation_insensitive,
    ),
    Claim(
        "generic-degradation",
        "fig8",
        "Generic correlated failures cut UWF by 0.24 at 256K processors",
        "0.24 absolute",
        _generic_drop,
    ),
]


def evaluate_claims(
    preset: str = "standard",
    seed: int = 0,
    figures: Optional[Dict[str, FigureResult]] = None,
    claims: Optional[List[Claim]] = None,
) -> List[ClaimOutcome]:
    """Evaluate the claims, regenerating each needed figure once.

    ``figures`` may supply pre-computed figures (e.g. loaded from an
    archive) keyed by figure id; anything missing is regenerated at
    ``preset``.
    """
    claims = CLAIMS if claims is None else claims
    cache: Dict[str, FigureResult] = dict(figures or {})
    outcomes: List[ClaimOutcome] = []
    for claim in claims:
        figure = cache.get(claim.figure_id)
        if figure is None:
            runner = FIGURE_RUNNERS[claim.figure_id]
            figure = runner(preset=preset, seed=seed)
            cache[claim.figure_id] = figure
        measured, holds = claim.check(figure)
        outcomes.append(ClaimOutcome(claim=claim, measured=measured, holds=holds))
    return outcomes


def render_claims(outcomes: List[ClaimOutcome]) -> str:
    """A verdict report, one block per claim."""
    lines = ["Paper claims vs measured", "=" * 24, ""]
    matches = sum(1 for outcome in outcomes if outcome.holds)
    for outcome in outcomes:
        lines.append(str(outcome))
        lines.append("")
    lines.append(f"{matches}/{len(outcomes)} claims reproduced")
    return "\n".join(lines)
