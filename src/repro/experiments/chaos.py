"""Backend-level chaos testing: run a figure under injected faults
and prove the archive still matches a clean run.

The paper models machines that keep doing useful work while their
components fail; this module holds the harness to the same standard.
:func:`run_chaos` regenerates a (sliced, scaled-down) figure twice —
once cleanly, once with a :class:`~repro.experiments.faultinject.BackendFaultPlan`
afflicting the primary backend behind a fully armed
:class:`~repro.resilience.backend.ResilientBackend` (deadline, retry,
circuit breaker, degradation chain) — and compares the two archives:

1. **bitwise** first: because ``san-sim`` and ``san-sim-full`` are
   trajectory-preserving (identical results per seed), a fault plan
   that afflicts only the primary backend on *every* attempt forces
   afflicted points through retries into degradation, and the
   degraded values must still match the clean run bit for bit;
2. :func:`~repro.experiments.archive.compare_figures` within
   tolerance otherwise (transient faults that survive on a retry use
   a derived seed, so their values legitimately move within noise);
3. a :class:`~repro.validate.stats.TolerancePolicy` band cross-check
   on every point, the same agreement bands the differential
   validation suite (PR 5) uses between backends.

The faulted run's :class:`~repro.obs.RunManifest` carries the full
resilience event log — every deadline kill, retry, breaker
transition, and ``degraded_from`` stamp — which is how the ``repro
chaos`` CLI (and the ``chaos-smoke`` CI job) asserts that recovery
actually happened rather than the faults never firing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..resilience import (
    BackendResilienceOptions,
    BreakerPolicy,
    DegradationPolicy,
    RetryPolicy,
    reset_breakers,
)
from ..resilience import events as resilience_events
from ..validate.stats import TolerancePolicy
from .archive import compare_figures, save_figure
from .config import plan_for
from .faultinject import BackendFaultPlan
from .figures import FIGURE_SPECS
from .resilience import ResilienceOptions
from .runner import FigureResult, run_sweep

__all__ = ["ChaosOutcome", "default_chaos_resilience", "run_chaos"]


@dataclass
class ChaosOutcome:
    """What a chaos comparison found.

    Attributes
    ----------
    figure_id / points / backend:
        The (sliced) figure that was regenerated twice.
    bit_identical:
        The faulted archive matches the clean one exactly — the
        strongest possible verdict, expected whenever every afflicted
        point degraded to a trajectory-preserving sibling backend.
    discrepancies:
        Rendered :class:`~repro.experiments.archive.Discrepancy`
        entries from the tolerance comparison (empty when within
        tolerance).
    band_violations:
        Points whose clean/faulted difference exceeds the
        :class:`~repro.validate.stats.TolerancePolicy` band.
    events_by_kind / degraded:
        Summary of the faulted run's resilience event log (what
        actually fired: retries, deadline kills, breaker transitions,
        degradations).
    faults_fired:
        At least one injected fault was observed (a chaos run whose
        plan never fires proves nothing).
    clean_wall_clock / faulted_wall_clock:
        Wall-clock seconds of the two runs.
    """

    figure_id: str
    points: int
    backend: str
    bit_identical: bool
    discrepancies: List[str] = field(default_factory=list)
    band_violations: List[str] = field(default_factory=list)
    events_by_kind: Dict[str, int] = field(default_factory=dict)
    degraded: List[str] = field(default_factory=list)
    faults_fired: bool = True
    clean_wall_clock: float = 0.0
    faulted_wall_clock: float = 0.0

    @property
    def recovered(self) -> bool:
        """The faulted run produced values matching the clean run.

        True when the archives are bit-identical, or agree within both
        the archive tolerance and the validation bands.
        """
        return self.bit_identical or (
            not self.discrepancies and not self.band_violations
        )

    def summary_lines(self) -> List[str]:
        """A human-readable report of the comparison."""
        lines = [
            f"chaos {self.figure_id}: {self.points} point(s), "
            f"backend {self.backend}",
            f"  clean run:   {self.clean_wall_clock:.1f} s",
            f"  faulted run: {self.faulted_wall_clock:.1f} s",
        ]
        if self.events_by_kind:
            shown = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.events_by_kind.items())
            )
            lines.append(f"  resilience events: {shown}")
        else:
            lines.append("  resilience events: none recorded")
        for stamp in self.degraded:
            lines.append(f"  degraded: {stamp}")
        if not self.faults_fired:
            lines.append(
                "  WARNING: no injected fault fired; raise the fault "
                "fractions or widen the point slice"
            )
        if self.bit_identical:
            lines.append("  archives: bit-identical")
        elif not self.discrepancies:
            lines.append("  archives: within tolerance (not bit-identical)")
        else:
            lines.append(f"  archives: {len(self.discrepancies)} discrepancy(ies)")
            lines.extend(f"    {entry}" for entry in self.discrepancies)
        if self.band_violations:
            lines.append(
                f"  tolerance bands: {len(self.band_violations)} violation(s)"
            )
            lines.extend(f"    {entry}" for entry in self.band_violations)
        else:
            lines.append("  tolerance bands: all points within band")
        lines.append(
            "  verdict: RECOVERED" if self.recovered else "  verdict: FAILED"
        )
        return lines


def default_chaos_resilience(
    backend: str,
    fault_plan: BackendFaultPlan,
    deadline: Optional[float] = 30.0,
    retries: int = 1,
    degrade_to: Tuple[str, ...] = (),
    state_dir: Optional[str] = None,
) -> BackendResilienceOptions:
    """The fully armed resilience configuration a chaos run uses.

    Subprocess isolation is always on (an injected hang must be
    killable), backoff is kept near zero (a chaos run should spend
    its wall clock simulating, not sleeping), and the breaker trips
    fast so a permanently afflicted backend is cut off after a couple
    of points rather than burning deadline budget on each one.
    """
    return BackendResilienceOptions(
        deadline=deadline,
        retry=RetryPolicy(
            max_retries=retries, backoff_base=0.01, backoff_max=0.05,
            jitter=0.0,
        ),
        breaker=BreakerPolicy(
            consecutive_failures=3, failure_rate=0.5, window=10,
            min_calls=6, reset_timeout=3600.0,
        ),
        degradation=DegradationPolicy(chain=degrade_to) if degrade_to else None,
        isolation="process",
        state_dir=state_dir,
        fault_plan=fault_plan,
    )


def _scaled_plan(preset: str, scale: float):
    """The preset's simulation plan with effort scaled by ``scale``."""
    plan = plan_for(preset)
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    if scale == 1.0:
        return plan
    return replace(
        plan, warmup=plan.warmup * scale, observation=plan.observation * scale
    )


def run_chaos(
    figure_id: str = "fig4a",
    preset: str = "quick",
    seed: int = 0,
    scale: float = 1.0,
    max_points: Optional[int] = None,
    fault_plan: Optional[BackendFaultPlan] = None,
    options: Optional[BackendResilienceOptions] = None,
    tolerance: float = 0.15,
    policy: Optional[TolerancePolicy] = None,
    out_dir: Optional[str] = None,
    executor: Optional[str] = None,
    queue_dir: Optional[str] = None,
) -> ChaosOutcome:
    """Run one figure clean and faulted; compare the archives.

    ``max_points`` slices the figure's sweep to its first N points
    (the CI smoke runs a handful, not all 30 of fig4a), and ``scale``
    shrinks the simulation effort like the validation CLI's
    ``--scale``. ``fault_plan`` defaults to a crash-every-attempt plan
    on half the evaluations of the figure's own backend, and
    ``options`` defaults to :func:`default_chaos_resilience` with a
    ``san-sim-full`` degradation chain when the figure runs on
    ``san-sim``.

    ``executor`` selects the in-process execution substrate both runs
    use: ``"serial"`` (the default) or ``"queue"`` (with ``queue_dir``;
    each run gets its own sub-queue under ``<queue_dir>/clean`` and
    ``<queue_dir>/faulted`` so the faulted run cannot coalesce against
    the clean run's results — that would prove nothing). ``"pool"`` is
    rejected: pooled workers cannot ship their resilience event logs
    back to the parent, and the comparison depends on the event record
    to prove faults actually fired. Custom (non-sweep) figures are
    rejected — there is no point-level evaluation to afflict.

    When ``out_dir`` is given, both archives (and their manifests) are
    saved under ``<out_dir>/clean`` and ``<out_dir>/faulted``.
    """
    if executor == "pool":
        raise ValueError(
            "chaos cannot run on the pool executor: pooled workers do "
            "not ship their resilience event logs back to the parent; "
            "use 'serial' or 'queue'"
        )
    try:
        spec = FIGURE_SPECS[figure_id]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure_id!r}; known: "
            f"{', '.join(sorted(FIGURE_SPECS))}"
        ) from None
    if spec.custom is not None:
        raise ValueError(
            f"figure {figure_id!r} is a custom (non-sweep) figure and "
            "cannot run under backend chaos"
        )
    backend = spec.backend
    points = list(spec.points())
    if max_points is not None:
        if max_points < 1:
            raise ValueError(f"max_points must be >= 1, got {max_points}")
        points = points[:max_points]
    plan = _scaled_plan(preset, scale)

    if fault_plan is None:
        fault_plan = BackendFaultPlan(
            backend_id=backend, crash_fraction=0.5, crash_attempts=None
        )
    if options is None:
        degrade_to = ("san-sim-full",) if backend == "san-sim" else ()
        options = default_chaos_resilience(
            backend, fault_plan, degrade_to=degrade_to
        )
    elif options.fault_plan is None:
        options = replace(options, fault_plan=fault_plan)

    def _run(label: str, backend_resilience) -> FigureResult:
        reset_breakers()
        resilience_events.drain()
        figure = run_sweep(
            figure_id,
            spec.title,
            spec.x_label,
            spec.metric,
            points,
            plan,
            seed=seed,
            processes=None,
            resilience=ResilienceOptions(
                backend_resilience=backend_resilience
            ),
            backend=backend,
            executor=executor,
            queue_dir=(
                os.path.join(queue_dir, label) if queue_dir is not None else None
            ),
        )
        if out_dir is not None:
            save_figure(figure, os.path.join(out_dir, label))
        return figure

    clean = _run("clean", None)
    faulted = _run("faulted", options)

    bit_identical = clean.series == faulted.series
    discrepancies = [
        str(entry)
        for entry in compare_figures(clean, faulted, rel_tolerance=tolerance)
    ]

    policy = policy or TolerancePolicy(
        alpha=0.01, rel_tolerance=tolerance, abs_tolerance=0.0
    )
    band_violations: List[str] = []
    for label, clean_points in clean.series.items():
        faulted_by_x = {
            x: y for x, y, _ in faulted.series.get(label, [])
        }
        for x, clean_y, _ in clean_points:
            if x not in faulted_by_x:
                band_violations.append(f"{label!r} at x={x:g}: missing point")
                continue
            faulted_y = faulted_by_x[x]
            band = policy.band(clean_y, faulted_y)
            if abs(faulted_y - clean_y) > band:
                band_violations.append(
                    f"{label!r} at x={x:g}: |{faulted_y:.6g} - {clean_y:.6g}|"
                    f" > band {band:.4g}"
                )

    section = (faulted.manifest.resilience or {}) if faulted.manifest else {}
    summary = section.get("summary") or {}
    by_kind = dict(summary.get("by_kind") or {})
    degraded = list(summary.get("degraded") or [])
    fault_kinds = {"retry", "deadline_kill", "failure", "breaker", "degraded"}
    faults_fired = any(by_kind.get(kind, 0) > 0 for kind in fault_kinds)

    return ChaosOutcome(
        figure_id=figure_id,
        points=len(points),
        backend=backend,
        bit_identical=bit_identical,
        discrepancies=discrepancies,
        band_violations=band_violations,
        events_by_kind=by_kind,
        degraded=degraded,
        faults_fired=faults_fired,
        clean_wall_clock=(
            clean.manifest.wall_clock_seconds if clean.manifest else 0.0
        ),
        faulted_wall_clock=(
            faulted.manifest.wall_clock_seconds if faulted.manifest else 0.0
        ),
    )
