"""Rendering: ASCII figures/tables and the EXPERIMENTS.md writer."""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, Iterable, List, Optional, TextIO

from ..core.parameters import MINUTE, YEAR, ModelParameters
from .runner import FigureResult

__all__ = [
    "render_figure",
    "render_ascii_chart",
    "render_table3",
    "figure_to_json",
    "write_markdown_section",
]


def _format_x(x: float) -> str:
    if float(x).is_integer() and abs(x) >= 1:
        return str(int(x))
    return f"{x:g}"


def render_figure(figure: FigureResult, precision: int = 4) -> str:
    """Render a figure as an aligned ASCII table: one row per x value,
    one column per series (with 95% half-widths)."""
    labels = list(figure.series)
    x_grid = sorted({x for label in labels for x, _, _ in figure.series[label]})
    by_series = {
        label: {x: (y, h) for x, y, h in figure.series[label]} for label in labels
    }

    header = [figure.x_label] + labels
    rows: List[List[str]] = []
    for x in x_grid:
        row = [_format_x(x)]
        for label in labels:
            cell = by_series[label].get(x)
            if cell is None:
                row.append("-")
            else:
                y, h = cell
                if figure.metric == "total_useful_work":
                    row.append(f"{y:.0f} ±{h:.0f}")
                else:
                    row.append(f"{y:.{precision}f} ±{h:.{precision}f}")
        rows.append(row)

    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [figure.title, ""]
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
    for note in figure.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_ascii_chart(
    figure: FigureResult, width: int = 60, height: int = 16
) -> str:
    """Render a figure as a terminal scatter chart.

    Each series gets a marker letter; x positions follow the rank of
    the x value (the paper's grids are logarithmic, so rank spacing
    reads better than linear). Intended for quick visual inspection
    in the CLI; :func:`render_figure` remains the numeric record.
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    labels = list(figure.series)
    if not labels:
        return f"{figure.title}\n(empty figure)"
    x_grid = sorted({x for label in labels for x, _, _ in figure.series[label]})
    all_y = [y for label in labels for _, y, _ in figure.series[label]]
    y_low, y_high = min(all_y), max(all_y)
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghijklmnopqrstuvwxyz"
    for index, label in enumerate(labels):
        marker = markers[index % len(markers)]
        for x, y, _ in figure.series[label]:
            column = round(
                x_grid.index(x) / max(1, len(x_grid) - 1) * (width - 1)
            )
            row = round((y - y_low) / (y_high - y_low) * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = [figure.title, ""]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            y_label = f"{y_high:10.4g} |"
        elif row_index == height - 1:
            y_label = f"{y_low:10.4g} |"
        else:
            y_label = " " * 10 + " |"
        lines.append(y_label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12
        + f"{_format_x(x_grid[0])}  ...  {_format_x(x_grid[-1])}   ({figure.x_label})"
    )
    for index, label in enumerate(labels):
        lines.append(f"  {markers[index % len(markers)]} = {label}")
    return "\n".join(lines)


def render_table3(params: Optional[ModelParameters] = None) -> str:
    """Table 3: the model parameters, in the paper's units."""
    params = params or ModelParameters()
    rows = [
        ("Checkpoint interval", f"{params.checkpoint_interval / MINUTE:g} min",
         "paper range: 15 min - 4 hr"),
        ("MTTF per node", f"{params.mttf_node / YEAR:g} yr", "paper range: 1 - 25 yr"),
        ("MTTR (compute nodes, system-wide)", f"{params.mttr / MINUTE:g} min", "10 min"),
        ("MTTR of IO nodes", f"{params.mttr_io / MINUTE:g} min", "1 min"),
        ("Number of compute processors", str(params.n_processors),
         "paper range: 8K - 256K"),
        ("Processors per node", str(params.processors_per_node), "8 (16/32 in 4g/4h)"),
        ("MTTQ (per-unit mean time to quiesce)", f"{params.mttq:g} s",
         "paper range: 0.5 - 10 s"),
        ("Broadcast overhead", f"{params.broadcast_overhead * 1e3:g} ms", "1 ms"),
        ("Software transmission overhead", f"{params.software_overhead * 1e3:g} ms",
         "1 ms"),
        ("I/O-compute cycle period", f"{params.app_io_cycle_period / MINUTE:g} min",
         "3 min"),
        ("Fraction of computation", f"{params.compute_fraction:g}",
         "paper range: 0.88 - 1.0"),
        ("Timeout value", "none" if params.timeout is None else f"{params.timeout:g} s",
         "paper range: 20 s - 2 min"),
        ("Probability of correlated failure", f"{params.prob_correlated_failure:g}",
         "paper range: 0 - 0.2"),
        ("Correlated failure factor (r)", f"{params.frate_correlated_factor:g}",
         "paper range: 100 - 1600"),
        ("Correlated failure window",
         f"{params.correlated_failure_window / MINUTE:g} min", "3 min"),
        ("System reboot time", f"{params.system_reboot_time / MINUTE:g} min", "1 hr"),
        ("Compute-to-I/O bandwidth (per group)",
         f"{params.bandwidth_compute_to_io / 1e6:g} MB/s", "350 MB/s"),
        ("Compute nodes per I/O node", str(params.compute_nodes_per_io_node), "64"),
        ("File-system bandwidth per I/O node",
         f"{params.bandwidth_io_to_fs * 8 / 1e9:g} Gb/s", "1 Gb/s"),
        ("Checkpoint size per node",
         f"{params.checkpoint_size_per_node / 1e6:g} MB", "256 MB"),
        ("Average I/O data per node",
         f"{params.app_io_data_per_node / 1e6:g} MB", "10 MB"),
        ("-- derived: checkpoint dump time --",
         f"{params.checkpoint_dump_time:.1f} s", "46.8 s at defaults"),
        ("-- derived: checkpoint FS write time --",
         f"{params.checkpoint_fs_write_time:.1f} s", "131 s at defaults"),
        ("-- derived: system MTBF --",
         f"{params.system_mtbf / MINUTE:.1f} min", "64 min at defaults"),
    ]
    name_width = max(len(name) for name, _, _ in rows)
    value_width = max(len(value) for _, value, _ in rows)
    lines = ["Table 3: Model parameters", ""]
    for name, value, comment in rows:
        lines.append(f"{name.ljust(name_width)}  {value.ljust(value_width)}  {comment}")
    return "\n".join(lines)


def figure_to_json(figure: FigureResult) -> str:
    """Serialise a figure result for archival."""
    return json.dumps(asdict(figure), indent=2, sort_keys=True)


def write_markdown_section(figure: FigureResult, stream: TextIO) -> None:
    """Append one figure as a Markdown section (used to build
    EXPERIMENTS.md)."""
    stream.write(f"### {figure.figure_id}: {figure.title}\n\n")
    stream.write("```\n")
    stream.write(render_figure(figure))
    stream.write("\n```\n\n")
