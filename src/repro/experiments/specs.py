"""Declarative figure specifications.

A :class:`FigureSpec` says everything a paper figure needs — id,
axis labels, metric, evaluation backend, and how to build its sweep
points — so one generic runner
(:func:`repro.experiments.figures.run_figure`) can regenerate any of
them. Figures whose shape does not fit a sweep (exact chain solves,
the coordination-law cross-validation) plug in a ``custom`` callable
instead and keep the same calling convention.

This replaces the old pattern of one hand-written function per figure
threading eight positional arguments into ``run_sweep``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .runner import DEFAULT_BACKEND, FigureResult, SweepPoint

__all__ = ["FigureSpec"]


@dataclass(frozen=True)
class FigureSpec:
    """Everything needed to regenerate one figure.

    Attributes
    ----------
    figure_id:
        The figure's id (CLI name, archive filename, journal name).
    title:
        Plot title, as rendered in reports.
    x_label:
        X-axis label.
    metric:
        Y-axis metric (``"useful_work_fraction"`` or
        ``"total_useful_work"``).
    points:
        Zero-argument callable building the sweep's
        :class:`~repro.experiments.runner.SweepPoint` list. ``None``
        for custom figures.
    backend:
        Registered evaluation backend the sweep runs through.
    strategy:
        Checkpointing-strategy spec the sweep's plan defaults to (see
        :mod:`repro.strategies`); ``"flat"`` everywhere except the
        strategy-comparison figure, and overridable per run with
        ``run_figure(..., strategy=...)`` / ``--strategy``.
    post:
        Optional hook run on the finished figure (e.g. attaching
        closed-form prediction notes).
    custom:
        For figures that are not sweeps: a callable with the figure
        signature ``(preset, seed, processes, resilience)`` that
        builds the whole :class:`FigureResult` itself. When set,
        ``points`` and ``post`` are unused.
    """

    figure_id: str
    title: str = ""
    x_label: str = ""
    metric: str = "useful_work_fraction"
    points: Optional[Callable[[], List[SweepPoint]]] = None
    backend: str = DEFAULT_BACKEND
    strategy: str = "flat"
    post: Optional[Callable[[FigureResult], None]] = None
    custom: Optional[Callable[..., FigureResult]] = None

    def __post_init__(self) -> None:
        if self.custom is None and self.points is None:
            raise ValueError(
                f"figure spec {self.figure_id!r} needs either a points "
                "builder or a custom runner"
            )
