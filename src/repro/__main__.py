"""``python -m repro`` dispatches to the experiments CLI."""

import sys

from .experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
