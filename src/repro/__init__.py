"""repro — reproduction of "Modeling Coordinated Checkpointing for
Large-Scale Supercomputers" (Wang et al., DSN 2005).

Subpackages
-----------
``repro.san``
    Stochastic Activity Network formalism, discrete-event simulator,
    reward variables, replication statistics and an exact CTMC solver
    (the repository's Möbius replacement).
``repro.core``
    The paper's model: twelve composed submodels of a coordinated
    checkpointing supercomputer, with useful-work accounting.
``repro.analytical``
    Baselines and closed forms: Young, Daly, Vaidya, coordination
    order statistics, the correlated-failure birth–death chain.
``repro.cluster``
    A message-level discrete-event simulator of the actual 6-step
    checkpoint protocol over per-node state machines (ground truth for
    the aggregate SAN model).
``repro.failures``
    Failure arrival processes and synthetic trace tooling.
``repro.workload``
    The BSP application workload model.
``repro.backends``
    The unified evaluation-backend layer: one ``Backend`` protocol
    over SAN simulation, exact CTMC solves, the cluster simulator and
    the analytical closed forms, plus a content-addressed result
    cache.
``repro.resilience``
    Resilient backend execution: per-evaluation deadlines, retries
    with derived seeds, per-backend circuit breakers and declarative
    degradation chains wrapped around any registered backend.
``repro.experiments``
    The evaluation harness regenerating every figure of the paper.
``repro.validate``
    Statistical validation: goodness-of-fit, metamorphic invariances,
    cross-backend differential cases and golden baselines.
``repro.obs``
    Observability: run manifests, process metrics, event tracing.
"""

from ._version import __version__
from .core import (
    CoordinationMode,
    ModelParameters,
    SimulationPlan,
    SimulationResult,
    simulate,
)

__all__ = [
    "__version__",
    "ModelParameters",
    "CoordinationMode",
    "SimulationPlan",
    "SimulationResult",
    "simulate",
]
