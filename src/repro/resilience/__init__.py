"""Backend-level resilience: deadlines, retries, breakers, degradation.

The paper models systems that keep making forward progress while
components fail mid-operation; this package holds the harness itself
to that standard at the *backend* layer (PR 1 did it for the sweep
layer). It wraps any :class:`~repro.backends.base.Backend` behind the
existing protocol, so everything downstream — the sweep runner, the
figure specs, the CLI — is untouched:

:class:`~repro.resilience.backend.ResilientBackend`
    Per-evaluation wall-clock **deadlines** (a cooperative budget
    threaded into the simulator plus optional subprocess isolation
    that hard-kills a hung kernel), **retries** with exponential
    backoff and deterministic jitter (each retry on a freshly derived
    ``retry/`` seed stream), and a declarative
    :class:`~repro.resilience.backend.DegradationPolicy` fallback
    chain (``san-sim -> san-sim-full -> analytical``) gated by
    ``Backend.supports()``.
:class:`~repro.resilience.breaker.CircuitBreaker`
    A per-backend-id closed/open/half-open breaker with failure-rate
    and consecutive-failure trip conditions and a half-open probe
    budget; transitions land in the metrics registry and, via the
    event log, in the :class:`~repro.obs.RunManifest`.
:mod:`repro.resilience.events`
    The process-local structured event log the sweep runner drains
    into the manifest.

See ``docs/RESILIENCE.md`` for the decision tree
(deadline -> retry -> breaker -> degrade) and configuration examples.
"""

from __future__ import annotations

from .backend import (
    BackendResilienceOptions,
    CircuitOpenError,
    DeadlineExceededError,
    DegradationPolicy,
    ExecutionReport,
    ResilientBackend,
)
from .breaker import (
    BreakerPolicy,
    CircuitBreaker,
    breaker_for,
    breaker_state_path,
    load_breaker_state,
    reset_breakers,
)
from .retry import RetryPolicy, derive_attempt_seed

__all__ = [
    "BackendResilienceOptions",
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "DegradationPolicy",
    "ExecutionReport",
    "ResilientBackend",
    "RetryPolicy",
    "breaker_for",
    "breaker_state_path",
    "load_breaker_state",
    "derive_attempt_seed",
    "reset_breakers",
]
