"""Per-backend circuit breakers (closed / open / half-open).

A breaker protects the rest of a run from a backend that has started
failing systematically: after enough failures the breaker *opens* and
further calls are rejected immediately (letting the
:class:`~repro.resilience.backend.DegradationPolicy` fall back to a
healthy backend instead of burning a full deadline-plus-retries cycle
per point). After ``reset_timeout`` seconds the breaker goes
*half-open* and admits a bounded budget of probe calls; one probe
success re-closes it, one probe failure re-opens it.

Trip conditions (either is sufficient):

* ``consecutive_failures`` failures in a row, or
* a failure rate of at least ``failure_rate`` over the last
  ``window`` calls, once at least ``min_calls`` calls were observed.

State is process-local (each worker process earns its own view of a
backend's health). When a ``state_path`` is configured the breaker
additionally mirrors every change into a small JSON file — an
operator window that ``repro backends --state-dir`` renders — but it
never *reads* that file back: cross-process coordination through a
shared file would race, and a fresh process legitimately starts
closed.

Transitions are counted in the metrics registry
(``breaker.<id>.opened`` / ``half_opened`` / ``closed`` /
``rejected``) and logged to :mod:`repro.resilience.events`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from ..obs import metrics as obs_metrics
from . import events

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BreakerPolicy",
    "CircuitBreaker",
    "breaker_for",
    "breaker_state_path",
    "load_breaker_state",
    "reset_breakers",
]

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Schema version of the on-disk breaker state file.
STATE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BreakerPolicy:
    """When a backend's breaker trips, and how it recovers.

    Attributes
    ----------
    consecutive_failures:
        Trip after this many failures in a row.
    failure_rate / window / min_calls:
        Trip when at least ``failure_rate`` of the last ``window``
        calls failed, once ``min_calls`` calls have been observed
        (so a single early failure cannot trip a rate of 1.0).
    reset_timeout:
        Seconds an open breaker waits before going half-open.
    half_open_probes:
        How many probe calls a half-open breaker admits before it
        rejects again while awaiting their verdict.
    """

    consecutive_failures: int = 5
    failure_rate: float = 0.5
    window: int = 20
    min_calls: int = 10
    reset_timeout: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.consecutive_failures < 1:
            raise ValueError(
                f"consecutive_failures must be >= 1, got {self.consecutive_failures}"
            )
        if not 0.0 < self.failure_rate <= 1.0:
            raise ValueError(
                f"failure_rate must be in (0, 1], got {self.failure_rate}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {self.min_calls}")
        if self.reset_timeout < 0:
            raise ValueError(
                f"reset_timeout must be >= 0, got {self.reset_timeout}"
            )
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """One backend's health gate; see the module docstring.

    ``clock`` is injectable (default ``time.monotonic``) so tests
    exercise the open -> half-open timeout without real sleeps.
    """

    def __init__(
        self,
        backend_id: str,
        policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        state_path: Optional[str] = None,
    ) -> None:
        self.backend_id = backend_id
        self.policy = policy or BreakerPolicy()
        self.clock = clock
        self.state_path = state_path
        self.state = CLOSED
        self.consecutive = 0
        self.outcomes: Deque[bool] = deque(maxlen=self.policy.window)
        self.calls_seen = 0
        self.opened_at: Optional[float] = None
        self.probes_in_flight = 0
        self.last_error: Optional[str] = None
        self.transitions = 0

    # ------------------------------------------------------------------
    def allow(self) -> Optional[str]:
        """``None`` when a call may proceed, else a rejection reason.

        An open breaker past its reset timeout flips to half-open and
        admits up to ``half_open_probes`` probe calls; the caller must
        report each probe's verdict via :meth:`record_success` /
        :meth:`record_failure`.
        """
        if self.state == OPEN:
            elapsed = self.clock() - (self.opened_at or 0.0)
            if elapsed < self.policy.reset_timeout:
                self._count("rejected")
                return (
                    f"breaker for {self.backend_id!r} is open "
                    f"({self.policy.reset_timeout - elapsed:.1f} s until half-open)"
                )
            self._transition(HALF_OPEN)
            self.probes_in_flight = 0
        if self.state == HALF_OPEN:
            if self.probes_in_flight >= self.policy.half_open_probes:
                self._count("rejected")
                return (
                    f"breaker for {self.backend_id!r} is half-open with its "
                    f"probe budget ({self.policy.half_open_probes}) in flight"
                )
            self.probes_in_flight += 1
        return None

    def record_success(self) -> None:
        """A call succeeded: close a half-open breaker, clear streaks."""
        self.calls_seen += 1
        if self.state == HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._transition(CLOSED)
            self.outcomes.clear()
        else:
            self.outcomes.append(True)
        self.consecutive = 0
        self._persist()

    def record_failure(self, error: BaseException) -> None:
        """A call failed: trip when a trip condition is now met."""
        self.calls_seen += 1
        self.last_error = f"{type(error).__name__}: {error}"
        if self.state == HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._transition(OPEN)
            self._persist()
            return
        self.outcomes.append(False)
        self.consecutive += 1
        if self.state == CLOSED and self._should_trip():
            self._transition(OPEN)
        self._persist()

    # ------------------------------------------------------------------
    def _should_trip(self) -> bool:
        if self.consecutive >= self.policy.consecutive_failures:
            return True
        if self.calls_seen >= self.policy.min_calls and self.outcomes:
            failures = sum(1 for ok in self.outcomes if not ok)
            if failures / len(self.outcomes) >= self.policy.failure_rate:
                return True
        return False

    def _transition(self, state: str) -> None:
        previous = self.state
        self.state = state
        self.transitions += 1
        if state == OPEN:
            self.opened_at = self.clock()
            self._count("opened")
        elif state == HALF_OPEN:
            self._count("half_opened")
        else:
            self.opened_at = None
            self._count("closed")
        events.record(
            "breaker", self.backend_id, transition=f"{previous} -> {state}",
            last_error=self.last_error,
        )

    def _count(self, what: str) -> None:
        obs_metrics.registry().counter(
            f"breaker.{self.backend_id}.{what}"
        ).inc()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The breaker's current state as a plain JSON-able dict."""
        return {
            "schema_version": STATE_SCHEMA_VERSION,
            "backend_id": self.backend_id,
            "state": self.state,
            "consecutive_failures": self.consecutive,
            "calls_seen": self.calls_seen,
            "window": [1 if ok else 0 for ok in self.outcomes],
            "transitions": self.transitions,
            "last_error": self.last_error,
            "updated_unix": time.time(),
        }

    def _persist(self) -> None:
        """Best-effort atomic mirror of :meth:`snapshot` to disk."""
        if not self.state_path:
            return
        directory = os.path.dirname(self.state_path) or "."
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=directory, prefix=".breaker-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
                    handle.write("\n")
                os.replace(tmp_path, self.state_path)
            except BaseException:
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
                raise
        except OSError:
            pass  # a read-only disk must not turn health reporting into failures


# ----------------------------------------------------------------------
# Registry: one breaker per (backend id, state dir) per process
# ----------------------------------------------------------------------
_BREAKERS: Dict[Tuple[str, Optional[str]], CircuitBreaker] = {}


def breaker_state_path(state_dir: str, backend_id: str) -> str:
    """Where a backend's breaker state file lives inside ``state_dir``."""
    return os.path.join(state_dir, f"{backend_id}.breaker.json")


def breaker_for(
    backend_id: str,
    policy: Optional[BreakerPolicy] = None,
    state_dir: Optional[str] = None,
    clock: Callable[[], float] = time.monotonic,
) -> CircuitBreaker:
    """The process-wide breaker of one backend (created on first use).

    Repeated calls with the same ``(backend_id, state_dir)`` return
    the same instance — a sweep's worker evaluations all feed one
    health record — so the *first* caller's policy and clock win.
    """
    key = (backend_id, state_dir)
    breaker = _BREAKERS.get(key)
    if breaker is None:
        state_path = (
            breaker_state_path(state_dir, backend_id) if state_dir else None
        )
        breaker = CircuitBreaker(
            backend_id, policy=policy, clock=clock, state_path=state_path
        )
        _BREAKERS[key] = breaker
    return breaker


def reset_breakers() -> None:
    """Drop every process-wide breaker (tests, chaos-run isolation)."""
    _BREAKERS.clear()


def load_breaker_state(path: str) -> Optional[Dict[str, Any]]:
    """Read a breaker state file written by :meth:`CircuitBreaker._persist`.

    Returns ``None`` when the file is missing, unreadable, malformed,
    or of a foreign schema — health display is best-effort and must
    never fail the command rendering it.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("schema_version") != STATE_SCHEMA_VERSION:
        return None
    if not isinstance(payload.get("backend_id"), str):
        return None
    return payload
