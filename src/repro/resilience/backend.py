"""A resilient wrapper around any evaluation backend.

:class:`ResilientBackend` implements the same protocol as the backend
it wraps (``id`` / ``backend_version`` / ``capabilities`` /
``supports`` / ``evaluate``), so the sweep runner, the figure specs
and the CLI need no changes. What it adds, in decision order:

1. **Deadline** — every attempt gets a wall-clock budget. The budget
   is threaded *cooperatively* into the simulation plan (the kernel
   raises ``WallClockExceededError`` when it notices), and with
   ``isolation="process"`` the attempt additionally runs in a child
   process that is hard-killed at the deadline — the only way to stop
   a kernel that is hung rather than slow.
2. **Retry** — a failed or killed attempt is retried per
   :class:`~repro.resilience.retry.RetryPolicy`, each retry on a
   freshly derived ``retry/{seed}/{attempt}`` stream so a poisoned
   sample path is not deterministically replayed.
3. **Breaker** — every attempt first consults the backend's
   :class:`~repro.resilience.breaker.CircuitBreaker`; an open breaker
   skips the backend immediately instead of burning deadline x
   retries per evaluation.
4. **Degrade** — when a backend is exhausted (retries spent, breaker
   open, or the request unsupported), the
   :class:`DegradationPolicy` chain supplies the next capable
   backend. A degraded result is stamped ``degraded_from: <primary>``
   in its notes, and the event log records the hand-off for the run
   manifest.

Everything observable lands in the metrics registry
(``resilience.retries`` / ``deadline_kills`` / ``degraded``) and the
structured event log (:mod:`repro.resilience.events`).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, List, Optional, Tuple

from ..backends.base import (
    Backend,
    BackendCapabilities,
    BackendError,
    EvaluationPlan,
    EvaluationResult,
    UnsupportedMetricError,
    UnsupportedParametersError,
)
from ..backends.canonical import canonical_json
from ..backends.registry import UnknownBackendError, get_backend
from ..core.parameters import ModelParameters
from ..obs import metrics as obs_metrics
from . import events
from .breaker import BreakerPolicy, CircuitBreaker, breaker_for
from .retry import RetryPolicy, derive_attempt_seed

__all__ = [
    "BackendResilienceOptions",
    "CircuitOpenError",
    "DeadlineExceededError",
    "DegradationPolicy",
    "ExecutionReport",
    "RemoteEvaluationError",
    "ResilientBackend",
    "evaluation_key",
]


class DeadlineExceededError(BackendError):
    """An evaluation attempt exceeded its wall-clock deadline and was
    killed (or would not finish cooperatively)."""


class CircuitOpenError(BackendError):
    """The backend's circuit breaker rejected the call."""


class RemoteEvaluationError(BackendError):
    """An isolated (subprocess) attempt failed; carries the original
    error's type name in ``error_type``."""

    def __init__(self, message: str, error_type: str = "") -> None:
        super().__init__(message)
        self.error_type = error_type


def evaluation_key(
    backend_id: str, params: ModelParameters, plan: EvaluationPlan
) -> str:
    """A stable digest identifying one evaluation request, seed excluded.

    Fault plans key on it so every retry of the same request faces the
    same fault decision (the fault models the backend's behaviour for
    that request, not one sample path), and jittered backoff uses it
    as its token.
    """
    identity = {
        "backend": backend_id,
        "params": asdict(params),
        "plan": asdict(plan.with_seed(0)),
    }
    return hashlib.blake2b(
        canonical_json(identity).encode("utf-8"), digest_size=16
    ).hexdigest()


@dataclass(frozen=True)
class DegradationPolicy:
    """An ordered fallback chain of backend ids.

    ``fallbacks_after(backend_id)`` returns the ids to try once
    ``backend_id`` is exhausted: the chain elements after it when it
    appears in the chain, or the whole chain when it does not (a chain
    that never names the primary reads as "then try these").
    """

    chain: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "chain", tuple(self.chain))
        seen = set()
        for backend_id in self.chain:
            if backend_id in seen:
                raise ValueError(
                    f"degradation chain repeats backend {backend_id!r}"
                )
            seen.add(backend_id)

    def fallbacks_after(self, backend_id: str) -> Tuple[str, ...]:
        """The backends to try after ``backend_id`` is exhausted."""
        if backend_id in self.chain:
            position = self.chain.index(backend_id)
            return self.chain[position + 1:]
        return self.chain


@dataclass(frozen=True)
class BackendResilienceOptions:
    """Picklable configuration of one :class:`ResilientBackend`.

    Rides inside :class:`~repro.experiments.resilience.ResilienceOptions`
    (and through worker-task arguments) so every sweep worker wraps
    its backend identically.

    Attributes
    ----------
    deadline:
        Wall-clock seconds one evaluation attempt may take. Threaded
        cooperatively into the simulation plan; with
        ``isolation="process"`` also enforced by hard-killing the
        attempt's child process.
    retry:
        Backoff policy for failed/killed attempts (attempt ``k``
        evaluates on seed ``retry/{seed}/{k}``).
    breaker:
        Trip/recovery policy of the per-backend circuit breaker;
        ``None`` disables breakers.
    degradation:
        Fallback chain consulted when a backend is exhausted;
        ``None`` means fail instead of degrading.
    isolation:
        ``"none"`` (in-process, cooperative deadline only) or
        ``"process"`` (each attempt in a hard-killable child process;
        requires the backend to be registered, since the child
        re-resolves it by id).
    state_dir:
        Directory for breaker state files (the operator window
        ``repro backends --state-dir`` renders); ``None`` keeps
        breaker state in memory only.
    fault_plan:
        Optional :class:`~repro.experiments.faultinject.BackendFaultPlan`
        applied around every attempt (chaos testing).
    """

    deadline: Optional[float] = None
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_retries=1, backoff_base=0.1, backoff_max=5.0, jitter=0.25
        )
    )
    breaker: Optional[BreakerPolicy] = field(default_factory=BreakerPolicy)
    degradation: Optional[DegradationPolicy] = None
    isolation: str = "none"
    state_dir: Optional[str] = None
    fault_plan: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if self.isolation not in ("none", "process"):
            raise ValueError(
                f"isolation must be 'none' or 'process', got {self.isolation!r}"
            )


@dataclass
class ExecutionReport:
    """What one resilient evaluation actually did (for the caller).

    The sweep worker reads it to decide cache purity: only a *clean*
    execution (primary backend, first attempt, base seed) may be
    cached, because only that result is what an unfaulted run would
    produce.
    """

    requested_backend: str
    produced_backend: Optional[str] = None
    attempts: int = 0
    retries: int = 0
    deadline_kills: int = 0
    breaker_rejections: int = 0
    degraded_from: Optional[str] = None
    degraded_reason: Optional[str] = None
    seed_diverged: bool = False
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the result is exactly what a clean run produces."""
        return (
            self.produced_backend == self.requested_backend
            and self.attempts == 1
            and self.retries == 0
            and not self.seed_diverged
        )


def _subprocess_child(
    conn: Any,
    backend_id: str,
    params: ModelParameters,
    plan: EvaluationPlan,
    fault_plan: Optional[Any],
    key: str,
    attempt: int,
) -> None:
    """Child-process body of one isolated attempt.

    Resolves the backend by id (registration happens at import time in
    every process; under fork the parent's registry is inherited),
    applies the fault hooks *inside* the child so injected hangs are
    killable, and ships either the result JSON or a structured error
    back over the pipe.
    """
    try:
        backend = get_backend(backend_id)
        if fault_plan is not None:
            fault_plan.before_evaluate(backend_id, key, attempt)
        result = backend.evaluate(params, plan)
        if fault_plan is not None:
            result = fault_plan.after_evaluate(backend_id, key, attempt, result)
        conn.send(("ok", result.to_json()))
    except BaseException as exc:  # noqa: BLE001 - must not die silently
        try:
            conn.send(
                ("error", {"error_type": type(exc).__name__,
                           "error_message": str(exc)})
            )
        except Exception:
            pass
    finally:
        conn.close()


class ResilientBackend:
    """Protocol-compatible resilient wrapper; see the module docstring.

    ``clock`` and ``sleep`` are injectable for deterministic tests.
    After every :meth:`evaluate` the wrapper exposes what happened on
    ``last_report`` (an :class:`ExecutionReport`).
    """

    def __init__(
        self,
        backend: Backend,
        options: Optional[BackendResilienceOptions] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = backend
        self.options = options or BackendResilienceOptions()
        self.clock = clock
        self.sleep = sleep
        self.last_report: Optional[ExecutionReport] = None

    # -- protocol delegation -------------------------------------------
    @property
    def id(self) -> str:
        """The wrapped backend's id (the wrapper is transparent)."""
        return self.inner.id

    @property
    def backend_version(self) -> int:
        """The wrapped backend's version."""
        return self.inner.backend_version

    @property
    def capabilities(self) -> BackendCapabilities:
        """The wrapped backend's capabilities."""
        return self.inner.capabilities

    def supports(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> Optional[str]:
        """Delegates to the wrapped backend (``None`` = supported)."""
        return self.inner.supports(params, plan)

    # -- the resilient execution path ----------------------------------
    def evaluate(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> EvaluationResult:
        """Evaluate with deadlines, retries, breaker and degradation.

        Tries the wrapped backend first, then each capable backend of
        the degradation chain. Raises the last error when every
        candidate is exhausted.
        """
        report = ExecutionReport(requested_backend=self.inner.id)
        self.last_report = report
        last_error: Optional[BaseException] = None
        for candidate in self._candidates(params, plan, report):
            result, error = self._try_candidate(candidate, params, plan, report)
            if result is not None:
                report.produced_backend = candidate.id
                if candidate.id != self.inner.id:
                    cause = report.degraded_reason or "primary exhausted"
                    report.degraded_from = self.inner.id
                    result.notes.append(
                        f"degraded_from: {self.inner.id} ({cause})"
                    )
                    obs_metrics.registry().counter("resilience.degraded").inc()
                    events.record(
                        "degraded", candidate.id,
                        **{"from": self.inner.id, "to": candidate.id,
                           "cause": cause},
                    )
                return result
            if error is not None:
                last_error = error
                report.degraded_reason = (
                    f"{type(error).__name__}: {error}"
                )
        if last_error is None:
            last_error = UnsupportedParametersError(
                f"no capable backend for this request (primary "
                f"{self.inner.id!r}, chain "
                f"{self.options.degradation.chain if self.options.degradation else ()})"
            )
        raise last_error

    # ------------------------------------------------------------------
    def _candidates(
        self,
        params: ModelParameters,
        plan: EvaluationPlan,
        report: ExecutionReport,
    ) -> List[Backend]:
        """The primary plus every *capable* fallback, in chain order."""
        candidates: List[Backend] = [self.inner]
        if self.options.degradation is None:
            return candidates
        for backend_id in self.options.degradation.fallbacks_after(self.inner.id):
            try:
                backend = get_backend(backend_id)
            except UnknownBackendError:
                events.record(
                    "unsupported", backend_id,
                    reason="not registered; skipped in degradation chain",
                )
                continue
            missing = [
                metric for metric in plan.metrics
                if not backend.capabilities.supports_metric(metric)
            ]
            if missing:
                events.record(
                    "unsupported", backend_id,
                    reason=f"cannot produce metric(s) {', '.join(missing)}",
                )
                continue
            reason = backend.supports(params, plan)
            if reason is not None:
                events.record("unsupported", backend_id, reason=reason)
                continue
            candidates.append(backend)
        return candidates

    def _try_candidate(
        self,
        backend: Backend,
        params: ModelParameters,
        plan: EvaluationPlan,
        report: ExecutionReport,
    ) -> Tuple[Optional[EvaluationResult], Optional[BaseException]]:
        """Run the attempt loop on one backend.

        Returns ``(result, None)`` on success, ``(None, last_error)``
        when the backend is exhausted or rejected.
        """
        options = self.options
        key = evaluation_key(backend.id, params, plan)
        breaker = self._breaker(backend.id)
        reg = obs_metrics.registry()
        last_error: Optional[BaseException] = None
        for attempt in range(options.retry.max_retries + 1):
            if breaker is not None:
                reason = breaker.allow()
                if reason is not None:
                    report.breaker_rejections += 1
                    events.record("breaker_rejected", backend.id, reason=reason)
                    return None, CircuitOpenError(reason)
            if attempt > 0:
                delay = options.retry.delay_for(attempt, token=key)
                reg.counter("resilience.retries").inc()
                report.retries += 1
                events.record(
                    "retry", backend.id, attempt=attempt, delay=delay,
                    seed=derive_attempt_seed(plan.seed, attempt),
                    after=(f"{type(last_error).__name__}: {last_error}"
                           if last_error else None),
                )
                if delay > 0:
                    self.sleep(delay)
            seeded = self._attempt_plan(plan, attempt)
            report.attempts += 1
            try:
                result = self._execute(backend, params, seeded, key, attempt)
            except (UnsupportedMetricError, UnsupportedParametersError) as exc:
                # Permanent for this request: not a health signal, and
                # retrying cannot help — move on to the next candidate.
                report.errors.append(f"{type(exc).__name__}: {exc}")
                events.record("unsupported", backend.id, reason=str(exc))
                return None, exc
            except Exception as exc:
                last_error = exc
                report.errors.append(f"{type(exc).__name__}: {exc}")
                if self._is_deadline_error(exc):
                    report.deadline_kills += 1
                    reg.counter("resilience.deadline_kills").inc()
                    events.record(
                        "deadline_kill", backend.id, attempt=attempt,
                        deadline=options.deadline,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    events.record(
                        "failure", backend.id, attempt=attempt,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                if breaker is not None:
                    breaker.record_failure(exc)
            else:
                if breaker is not None:
                    breaker.record_success()
                if attempt > 0 and not backend.capabilities.deterministic:
                    report.seed_diverged = True
                return result, None
        events.record(
            "exhausted", backend.id,
            attempts=options.retry.max_retries + 1,
            error=(f"{type(last_error).__name__}: {last_error}"
                   if last_error else None),
        )
        return None, last_error

    def _breaker(self, backend_id: str) -> Optional[CircuitBreaker]:
        if self.options.breaker is None:
            return None
        return breaker_for(
            backend_id,
            policy=self.options.breaker,
            state_dir=self.options.state_dir,
            clock=self.clock,
        )

    @staticmethod
    def _is_deadline_error(exc: BaseException) -> bool:
        """Deadline kills and cooperative budget trips count alike."""
        if isinstance(exc, DeadlineExceededError):
            return True
        name = getattr(exc, "error_type", "") or type(exc).__name__
        return name == "WallClockExceededError"

    def _attempt_plan(self, plan: EvaluationPlan, attempt: int) -> EvaluationPlan:
        """The plan of one attempt: derived seed + cooperative budget."""
        seeded = plan.with_seed(derive_attempt_seed(plan.seed, attempt))
        deadline = self.options.deadline
        if deadline is not None:
            budget = seeded.simulation.wall_clock_budget
            budget = deadline if budget is None else min(budget, deadline)
            seeded = replace(
                seeded, simulation=replace(seeded.simulation,
                                           wall_clock_budget=budget)
            )
        return seeded

    # -- attempt execution ---------------------------------------------
    def _execute(
        self,
        backend: Backend,
        params: ModelParameters,
        plan: EvaluationPlan,
        key: str,
        attempt: int,
    ) -> EvaluationResult:
        """One attempt, isolated or in-process, fault hooks applied."""
        if self.options.isolation == "process" and self._resolvable(backend):
            return self._execute_isolated(backend, params, plan, key, attempt)
        fault_plan = self.options.fault_plan
        if fault_plan is not None:
            fault_plan.before_evaluate(backend.id, key, attempt)
        result = backend.evaluate(params, plan)
        if fault_plan is not None:
            result = fault_plan.after_evaluate(backend.id, key, attempt, result)
        return result

    @staticmethod
    def _resolvable(backend: Backend) -> bool:
        """Subprocess isolation needs the backend resolvable by id in
        the child; unregistered (test-stub) backends run in-process."""
        try:
            get_backend(backend.id)
        except UnknownBackendError:
            return False
        return True

    def _execute_isolated(
        self,
        backend: Backend,
        params: ModelParameters,
        plan: EvaluationPlan,
        key: str,
        attempt: int,
    ) -> EvaluationResult:
        """Run one attempt in a child process, hard-killed at deadline."""
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_subprocess_child,
            args=(child_conn, backend.id, params, plan,
                  self.options.fault_plan, key, attempt),
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(self.options.deadline):
                raise DeadlineExceededError(
                    f"evaluation on {backend.id!r} exceeded its "
                    f"{self.options.deadline:g} s deadline "
                    f"(attempt {attempt + 1}); worker killed"
                )
            try:
                status, payload = parent_conn.recv()
            except EOFError:
                raise RemoteEvaluationError(
                    f"isolated evaluation on {backend.id!r} died without a "
                    f"result (exit code {process.exitcode})"
                ) from None
        finally:
            parent_conn.close()
            if process.is_alive():
                process.terminate()
                process.join(1.0)
                if process.is_alive():  # pragma: no cover - stuck in kernel
                    process.kill()
            process.join(5.0)
        if status == "ok":
            return EvaluationResult.from_json(payload)
        raise RemoteEvaluationError(
            f"{payload.get('error_type', 'Exception')}: "
            f"{payload.get('error_message', '')} "
            f"(isolated attempt {attempt + 1} on {backend.id!r})",
            error_type=payload.get("error_type", ""),
        )
