"""Process-local structured log of resilience events.

Counters (the metrics registry) say *how often* a deadline kill or a
breaker transition happened; this log says *what exactly* happened,
in order, with enough structure for the
:class:`~repro.obs.RunManifest` to record every deadline kill, retry,
breaker transition and ``degraded_from`` stamp of a run. The sweep
runner drains it after each sweep and folds the events into the
manifest's ``resilience`` section.

Like the metrics registry, the log is process-local: a serial sweep
(the mode the chaos harness uses) sees every event; pooled worker
processes accumulate their own logs, which die with them — the
manifest notes that limitation rather than pretending otherwise.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..obs import metrics as obs_metrics

__all__ = ["record", "drain", "peek", "summarize"]

_EVENTS: List[Dict[str, Any]] = []

#: Hard bound so a pathological retry storm cannot grow the log (and
#: the manifest embedding it) without limit; overflow is counted in
#: the ``resilience.events_dropped`` metric instead.
MAX_EVENTS = 10_000


def record(kind: str, backend_id: str, **detail: Any) -> None:
    """Append one event (``kind``, ``backend`` plus free-form detail)."""
    if len(_EVENTS) >= MAX_EVENTS:
        obs_metrics.registry().counter("resilience.events_dropped").inc()
        return
    event = {"kind": str(kind), "backend": str(backend_id)}
    event.update(detail)
    _EVENTS.append(event)


def peek() -> List[Dict[str, Any]]:
    """The events recorded so far, without clearing them."""
    return list(_EVENTS)


def drain() -> List[Dict[str, Any]]:
    """Return all recorded events and clear the log."""
    events = list(_EVENTS)
    _EVENTS.clear()
    return events


def summarize(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Counts by event kind, plus degradation stamps, for a manifest."""
    by_kind: Dict[str, int] = {}
    degraded: List[str] = []
    for event in events:
        kind = event.get("kind", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if kind == "degraded":
            degraded.append(
                f"{event.get('from', '?')} -> {event.get('to', '?')}"
            )
    summary: Dict[str, Any] = {"by_kind": by_kind}
    if degraded:
        summary["degraded"] = degraded
    return summary
