"""Retry policy and seed-stream derivation.

Home of :class:`RetryPolicy` (exponential backoff, cap, deterministic
jitter) and :func:`derive_attempt_seed` (the PR-1 ``retry/`` stream
key convention). Both were born in
:mod:`repro.experiments.resilience`, which now re-exports them; the
backend layer (:mod:`repro.resilience.backend`) shares the exact same
policy so a retried evaluation never deterministically replays the
sample path that just failed.

Determinism contract: nothing here consults a random source. The
jitter of attempt ``k`` is a stable hash of ``(token, k)``, so two
runs of the same configuration back off identically — flaky-test
margins cannot creep in through the retry schedule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..san.rng import stable_stream_key

__all__ = ["RetryPolicy", "derive_attempt_seed", "jitter_fraction"]


def derive_attempt_seed(base_seed: int, attempt: int) -> int:
    """The seed of retry ``attempt`` for a point whose first attempt
    used ``base_seed``.

    Attempt 0 keeps the base seed (so runs without failures match the
    historical seeding exactly); attempt ``k > 0`` folds ``(seed, k)``
    through the same stable hash the stream registry uses, giving the
    retry an independent sample path instead of deterministically
    replaying whatever poisoned the first attempt.
    """
    if attempt == 0:
        return base_seed
    return stable_stream_key(f"retry/{base_seed}/{attempt}")


def jitter_fraction(token: object, attempt: int) -> float:
    """A deterministic unit-interval value in ``[0, 1)`` for jitter.

    Hashes ``(token, attempt)`` so distinct attempts (and distinct
    work items) spread out, while the same attempt of the same item
    jitters identically across runs.
    """
    digest = hashlib.blake2b(
        f"jitter/{token}/{attempt}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How failed or hung work is retried.

    ``delay_for(attempt)`` is the backoff slept before attempt
    ``attempt`` (1-based for retries): ``backoff_base * backoff_factor
    ** (attempt - 1)``, capped at ``backoff_max``. With ``jitter > 0``
    a deterministic fraction of the capped delay is added on top —
    ``delay * (1 + jitter * u)`` with ``u`` in ``[0, 1)`` hashed from
    ``(token, attempt)`` — so concurrent retries of different items
    de-synchronise without ever consulting a random source.
    """

    max_retries: int = 2
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise ValueError(f"backoff_max must be >= 0, got {self.backoff_max}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_for(self, attempt: int, token: object = None) -> float:
        """Backoff (seconds) before the given retry attempt (>= 1).

        ``token`` feeds the deterministic jitter hash; pass something
        identifying the work item (a point index, a cache key) so
        different items jitter differently. With ``jitter == 0`` (the
        default) the token is irrelevant and the schedule is the exact
        historical one.
        """
        if attempt < 1:
            return 0.0
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter and delay > 0.0:
            delay *= 1.0 + self.jitter * jitter_fraction(token, attempt)
        return delay
