"""Differential testing of evaluation backends against each other.

The paper's own validation argument is differential: the same
configuration answered by independent implementations (full SAN
simulation, exact CTMC solve, renewal closed forms, message-level
cluster simulation) must agree. A :class:`DifferentialCase` names one
such configuration — model parameters, an evaluation plan, the metric
under test, the participating backends, and a
:class:`~repro.validate.stats.TolerancePolicy` — and
:func:`run_case` evaluates every capable backend and compares all
pairs with the statistics appropriate to each pairing (see
:mod:`repro.validate.stats`).

Backends whose :meth:`supports` veto the configuration are skipped and
reported, not silently dropped. A backend that reports a single
replication (the cluster trajectory) yields INCONCLUSIVE pairs — the
n=1 rule from the statistics layer means it can never certify
agreement, but it also cannot fail the suite on no variance evidence.

Mutation testing hook: :func:`run_case` accepts a ``perturb`` map of
``field -> factor`` that is applied **only to the sampled backends**.
The exact oracles keep the reference configuration, so any real
perturbation must surface as a DISAGREE — this is how the CI smoke
test proves the differential harness has teeth.

The strategy zoo rides on the same machinery: a participant label may
carry a checkpointing-strategy suffix, ``"backend@strategyspec"``
(e.g. ``"san-sim@incremental:compression_ratio=1,..."``), in which
case that participant evaluates under a plan whose
``simulation.strategy`` is the suffix — same backend code, different
protocol. Perturbation keys prefixed ``strategy.`` multiply the named
spec parameter of every sampled strategy-suffixed participant; plain
(flat) participants do not carry the parameter, so they stay the
honest reference, exactly like the exact oracles do for ordinary
field perturbations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import combinations
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..backends import (
    Backend,
    EvaluationPlan,
    EvaluationResult,
    USEFUL_WORK_FRACTION,
    get_backend,
)
from ..core.parameters import HOUR, MINUTE, ModelParameters
from ..core.simulation import SimulationPlan
from .stats import (
    AGREE,
    DISAGREE,
    INCONCLUSIVE,
    Comparison,
    SampleSummary,
    TolerancePolicy,
    compare_summaries,
)

__all__ = [
    "DifferentialCase",
    "PairComparison",
    "CaseResult",
    "apply_perturbation",
    "parse_perturbation",
    "split_backend_label",
    "filter_cases_by_backends",
    "summarize_result",
    "run_case",
    "run_cases",
    "default_cases",
]


@dataclass(frozen=True)
class DifferentialCase:
    """One cross-backend agreement obligation.

    Attributes
    ----------
    name:
        Stable identifier; also keys the golden baseline file.
    description:
        What this configuration exercises, for reports.
    parameters:
        The model configuration all backends answer.
    metric:
        The metric compared across backends.
    backends:
        Participant labels: backend ids, optionally suffixed with a
        checkpointing-strategy spec as ``"backend@strategyspec"``
        (subject to each backend's own ``supports`` veto at this
        configuration and strategy).
    plan:
        Evaluation effort for the stochastic backends.
    policy:
        The tolerance policy for every pairwise comparison.
    """

    name: str
    description: str
    parameters: ModelParameters
    backends: Tuple[str, ...]
    plan: EvaluationPlan = field(
        default_factory=lambda: EvaluationPlan(metrics=(USEFUL_WORK_FRACTION,))
    )
    metric: str = USEFUL_WORK_FRACTION
    policy: TolerancePolicy = field(default_factory=TolerancePolicy)

    def scaled(self, factor: float) -> "DifferentialCase":
        """The same case with simulation effort scaled by ``factor``
        (observation window and replications; minimums keep the
        statistics well-defined)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be > 0, got {factor}")
        sim = self.plan.simulation
        # replace() keeps every other effort knob — kernel, batch_size,
        # wall_clock_budget, confidence — so scaling a batched case
        # still runs on the batched kernel.
        scaled_sim = replace(
            sim,
            observation=max(sim.observation * factor, 1 * HOUR),
            replications=max(int(round(sim.replications * factor)), 4),
        )
        return replace(self, plan=replace(self.plan, simulation=scaled_sim))


@dataclass(frozen=True)
class PairComparison:
    """One backend pair's comparison inside a case."""

    backend_a: str
    backend_b: str
    summary_a: SampleSummary
    summary_b: SampleSummary
    comparison: Comparison

    def __str__(self) -> str:
        return f"{self.backend_a} vs {self.backend_b}: {self.comparison}"


@dataclass(frozen=True)
class CaseResult:
    """Everything one differential case produced."""

    case: DifferentialCase
    seed: int
    summaries: Dict[str, SampleSummary]
    pairs: List[PairComparison]
    skipped: Dict[str, str]
    perturbed: Tuple[str, ...] = ()

    @property
    def verdict(self) -> str:
        """DISAGREE if any pair disagrees, else AGREE if at least one
        pair positively agrees, else INCONCLUSIVE."""
        verdicts = {pair.comparison.verdict for pair in self.pairs}
        if DISAGREE in verdicts:
            return DISAGREE
        if AGREE in verdicts:
            return AGREE
        return INCONCLUSIVE

    @property
    def passed(self) -> bool:
        """A case passes unless some pair positively disagrees.

        INCONCLUSIVE pairs (an unvalidated n=1 side) are reported but
        cannot fail a case — nor can they certify it; certification
        comes from the pairs with real variance information.
        """
        return self.verdict != DISAGREE


def split_backend_label(label: str) -> Tuple[str, Optional[str]]:
    """Split a participant label into ``(backend_id, strategy_spec)``.

    ``"san-sim"`` is ``("san-sim", None)`` — the flat protocol;
    ``"san-sim@incremental:compression_ratio=1"`` names the same
    backend running under that strategy spec.
    """
    backend_id, _, strategy = label.partition("@")
    return backend_id, (strategy or None)


def filter_cases_by_backends(
    cases: Sequence[DifferentialCase], backends: Sequence[str]
) -> List[DifferentialCase]:
    """Cases restricted to participants whose **base** backend id is
    in ``backends`` (a strategy-suffixed participant counts under the
    id before its ``@``).

    A case left with fewer than two participants has nothing to
    compare and is dropped. Unknown backend ids are a loud
    :class:`ValueError` — a typo'd ``--backends`` silently matching
    nothing would look like a green run.
    """
    from ..backends import backend_ids

    allowed = set(backends)
    known = set(backend_ids())
    unknown = sorted(allowed - known)
    if unknown:
        raise ValueError(
            f"unknown backend(s) in filter: {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    filtered: List[DifferentialCase] = []
    for case in cases:
        keep = tuple(
            label
            for label in case.backends
            if split_backend_label(label)[0] in allowed
        )
        if len(keep) >= 2:
            filtered.append(replace(case, backends=keep))
    return filtered


def parse_perturbation(spec: str) -> "Dict[str, float]":
    """Parse ``FIELD=FACTOR[,FIELD=FACTOR...]`` mutation specs."""
    perturb: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"perturbation {part!r} is not of the form FIELD=FACTOR"
            )
        name, _, factor = part.partition("=")
        perturb[name.strip()] = float(factor)
    return perturb


def apply_perturbation(
    params: ModelParameters, perturb: Mapping[str, float]
) -> ModelParameters:
    """``params`` with each named numeric field multiplied by its
    factor; unknown fields are a loud error, not a silent no-op."""
    changes: Dict[str, float] = {}
    for name, factor in perturb.items():
        if not hasattr(params, name):
            raise ValueError(
                f"unknown parameter field {name!r} in perturbation"
            )
        current = getattr(params, name)
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            raise ValueError(
                f"parameter field {name!r} is not numeric; cannot perturb"
            )
        changes[name] = type(current)(current * factor)
    return replace(params, **changes)


#: Perturbation keys with this prefix target strategy spec parameters
#: instead of model-parameter fields.
_STRATEGY_PERTURB_PREFIX = "strategy."


def _split_perturbation(
    perturb: Optional[Mapping[str, float]],
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """``perturb`` split into (model-field, strategy-parameter) maps,
    with unknown strategy parameters rejected up front."""
    params: Dict[str, float] = {}
    strategy: Dict[str, float] = {}
    for key, factor in (perturb or {}).items():
        if key.startswith(_STRATEGY_PERTURB_PREFIX):
            strategy[key[len(_STRATEGY_PERTURB_PREFIX):]] = factor
        else:
            params[key] = factor
    if strategy:
        from ..strategies import all_strategies

        known: set = set()
        for instance in all_strategies():
            known.update(instance.capabilities.parameters)
        unknown = sorted(set(strategy) - known)
        if unknown:
            raise ValueError(
                f"unknown strategy parameter(s) in perturbation: "
                f"{', '.join('strategy.' + name for name in unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
    return params, strategy


def _perturb_strategy_spec(
    spec: str, perturb: Mapping[str, float]
) -> str:
    """``spec`` with each named strategy parameter multiplied by its
    factor (value types are preserved, so an integer
    ``full_checkpoint_period`` stays an integer). Parameters the
    strategy does not carry are left alone — an adaptive participant
    is unmoved by ``strategy.compression_ratio``."""
    from ..strategies import format_spec, parse_spec, resolve

    name, _ = parse_spec(spec)
    params = resolve(spec).params_dict()
    changed = False
    for key, factor in perturb.items():
        if key not in params:
            continue
        current = params[key]
        params[key] = type(current)(current * factor)
        changed = True
    if not changed:
        return spec
    return format_spec(name, params)


def summarize_result(
    backend: Backend, result: EvaluationResult, metric: str
) -> SampleSummary:
    """A backend's answer in statistically comparable form.

    Exact and closed-form backends yield zero-sampling-error values.
    Sampled backends yield a mean/half-width/n summary; the
    replication count comes from ``details["replications"]`` and a
    missing count is treated as n=1 — an *unvalidated* interval that
    the comparison layer refuses to certify with.
    """
    value = result.metric(metric)
    if backend.capabilities.kind in ("exact", "closed-form"):
        return SampleSummary.exact_value(value.mean)
    samples = int(result.details.get("replications", 1))
    return SampleSummary(
        mean=value.mean,
        half_width=value.half_width,
        samples=samples,
        validated=samples >= 2,
    )


def _evaluate_participants(
    participants: Sequence[Tuple[str, str, ModelParameters, EvaluationPlan]],
    seed: int,
    executor,
) -> Dict[str, EvaluationResult]:
    """Evaluate ``(label, backend_id, params, plan)`` participants
    through an executor.

    Each participant becomes one :class:`~repro.exec.EvaluationTask`
    (``series`` = the full label, ``base_seed`` = the case seed, so
    the derived attempt-0 seed matches the inline path exactly; the
    per-participant plan carries any strategy suffix); the executor is
    drained and each serialised result is rebuilt into the
    :class:`~repro.backends.EvaluationResult` the comparison layer
    expects. An error envelope is re-raised — a differential case that
    cannot evaluate a backend must fail loudly, exactly as the inline
    ``backend.evaluate`` call would.
    """
    from ..exec import EvaluationTask, make_executor

    owned = isinstance(executor, str)
    instance = make_executor(executor) if owned else executor
    results: Dict[str, EvaluationResult] = {}
    try:
        for index, (label, backend_id, params, plan) in enumerate(participants):
            instance.submit(
                EvaluationTask(
                    index=index,
                    series=label,
                    x=0.0,
                    params=params,
                    plan=plan,
                    backend=backend_id,
                    base_seed=seed,
                )
            )
        for task_result in instance.drain():
            if not task_result.ok:
                failure = task_result.failure or {}
                raise RuntimeError(
                    f"differential evaluation of backend "
                    f"{task_result.series!r} failed: "
                    f"{failure.get('error_type', 'Exception')}: "
                    f"{failure.get('error_message', 'unknown error')}"
                )
            results[task_result.series] = EvaluationResult.from_json_dict(
                task_result.result
            )
    finally:
        if owned:
            instance.close()
    return results


def run_case(
    case: DifferentialCase,
    seed: int = 0,
    perturb: Optional[Mapping[str, float]] = None,
    executor=None,
) -> CaseResult:
    """Evaluate one case on every participating backend and compare
    all pairs.

    ``perturb`` mutates the configuration seen by the **sampled**
    backends only; the exact oracles answer the reference
    configuration, so a perturbation that matters must produce a
    DISAGREE somewhere.

    ``executor`` routes the per-backend evaluations through the
    execution layer (:mod:`repro.exec`): ``None`` evaluates inline
    (the historical path, bit-identical results), a string such as
    ``"serial"`` builds and owns that executor for this case, and a
    ready-made :class:`~repro.exec.base.Executor` instance is driven
    as-is and left open, so a persistent queue can coalesce repeated
    validation runs.
    """
    param_perturb, strategy_perturb = _split_perturbation(perturb)
    summaries: Dict[str, SampleSummary] = {}
    skipped: Dict[str, str] = {}
    perturbed: List[str] = []

    # (label, backend_id, params, unseeded per-participant plan)
    participants: List[Tuple[str, str, ModelParameters, EvaluationPlan]] = []
    for label in case.backends:
        backend_id, strategy_spec = split_backend_label(label)
        backend = get_backend(backend_id)
        if not backend.capabilities.supports_metric(case.metric):
            skipped[label] = f"does not produce metric {case.metric!r}"
            continue
        sampled = backend.capabilities.kind == "sampled"
        params = case.parameters
        if param_perturb and sampled:
            params = apply_perturbation(params, param_perturb)
            perturbed.append(label)
        base_plan = case.plan
        if strategy_spec is not None:
            if strategy_perturb and sampled:
                mutated = _perturb_strategy_spec(strategy_spec, strategy_perturb)
                if mutated != strategy_spec and label not in perturbed:
                    perturbed.append(label)
                strategy_spec = mutated
            base_plan = replace(
                case.plan,
                simulation=replace(case.plan.simulation, strategy=strategy_spec),
            )
        reason = backend.supports(params, base_plan.with_seed(seed))
        if reason is not None:
            skipped[label] = reason
            continue
        participants.append((label, backend_id, params, base_plan))

    if executor is None:
        evaluated = {
            label: get_backend(backend_id).evaluate(
                params, base_plan.with_seed(seed)
            )
            for label, backend_id, params, base_plan in participants
        }
    else:
        evaluated = _evaluate_participants(participants, seed, executor)
    for label, result in evaluated.items():
        summaries[label] = summarize_result(
            get_backend(split_backend_label(label)[0]), result, case.metric
        )

    pairs = [
        PairComparison(
            backend_a=a,
            backend_b=b,
            summary_a=summaries[a],
            summary_b=summaries[b],
            comparison=compare_summaries(summaries[a], summaries[b], case.policy),
        )
        for a, b in combinations(sorted(summaries), 2)
    ]
    return CaseResult(
        case=case,
        seed=seed,
        summaries=summaries,
        pairs=pairs,
        skipped=skipped,
        perturbed=tuple(perturbed),
    )


def run_cases(
    cases: Sequence[DifferentialCase],
    seed: int = 0,
    perturb: Optional[Mapping[str, float]] = None,
    executor=None,
) -> List[CaseResult]:
    """Every case at one root seed.

    ``executor`` is passed through to :func:`run_case`; note that an
    executor *instance* is shared across all cases (and left open),
    while a string builds a fresh executor per case.
    """
    return [
        run_case(case, seed=seed, perturb=perturb, executor=executor)
        for case in cases
    ]


def default_cases(scale: float = 1.0) -> List[DifferentialCase]:
    """The standing differential obligations.

    Configurations are chosen so the stochastic backends see real
    variance (failures actually occur inside the observation window)
    while each case stays in the sub-second-to-seconds range;
    tolerances follow the repository-wide 2% modeling band the
    integration suite already uses. ``scale`` shrinks or grows the
    simulation effort uniformly (the CI smoke uses ``scale < 1``).
    """
    exact_policy = TolerancePolicy(alpha=0.01, rel_tolerance=0.0,
                                   abs_tolerance=0.02)
    # Strategy-zoo configurations. The incremental case checkpoints
    # every 15 minutes so the dump overhead is a large enough slice of
    # the renewal cycle for the strategy.* mutation smoke to surface
    # as a statistically unambiguous DISAGREE.
    incremental_params = ModelParameters(
        n_processors=2048, processors_per_node=8,
        checkpoint_interval=15 * MINUTE,
    )
    adaptive_params = ModelParameters(n_processors=2048, processors_per_node=8)
    # Freeze the adaptive strategy's failure-rate input at
    # 2*delta/interval^2, the rate at which its optimal-interval rule
    # sqrt(2*delta/rate) lands exactly on the flat case's 30-minute
    # interval — the variant then reduces to the flat protocol up to
    # floating-point ulps in the chosen interval.
    _delta = adaptive_params.mttq + adaptive_params.checkpoint_dump_time
    _interval = adaptive_params.checkpoint_interval
    adaptive_frozen_rate = 2.0 * _delta / (_interval * _interval)
    cases = [
        DifferentialCase(
            name="san-vs-exact-small",
            description=(
                "1024 processors, default rates: full SAN simulation "
                "against the exact CTMC solve and the renewal closed form"
            ),
            parameters=ModelParameters(
                n_processors=1024, processors_per_node=8
            ),
            backends=("san-sim", "ctmc", "analytical"),
            plan=EvaluationPlan(
                metrics=(USEFUL_WORK_FRACTION,),
                simulation=SimulationPlan(
                    warmup=2 * HOUR,
                    observation=300 * HOUR,
                    replications=12,
                ),
            ),
            policy=exact_policy,
        ),
        DifferentialCase(
            name="san-vs-exact-stressed",
            description=(
                "4096 processors (failure-dominated regime): the "
                "abstraction gap between the SAN and the 3-state chain "
                "must stay inside the modeling band"
            ),
            parameters=ModelParameters(
                n_processors=4096, processors_per_node=8
            ),
            backends=("san-sim", "ctmc", "analytical"),
            plan=EvaluationPlan(
                metrics=(USEFUL_WORK_FRACTION,),
                simulation=SimulationPlan(
                    warmup=2 * HOUR,
                    observation=300 * HOUR,
                    replications=12,
                ),
            ),
            policy=exact_policy,
        ),
        DifferentialCase(
            name="kernel-equivalence",
            description=(
                "incremental vs full-rebuild event kernel on the same "
                "seeds — the two kernels must be sample-identical, so "
                "Welch must see a zero difference"
            ),
            parameters=ModelParameters(
                n_processors=2048, processors_per_node=8
            ),
            backends=("san-sim", "san-sim-full"),
            plan=EvaluationPlan(
                metrics=(USEFUL_WORK_FRACTION,),
                simulation=SimulationPlan(
                    warmup=1 * HOUR,
                    observation=120 * HOUR,
                    replications=8,
                ),
            ),
            policy=TolerancePolicy(alpha=0.01, rel_tolerance=0.0,
                                   abs_tolerance=1e-12),
        ),
        DifferentialCase(
            name="batched-vs-incremental",
            description=(
                "numpy lockstep kernel vs the incremental scalar kernel "
                "at the paper's failure-heavy base configuration (65536 "
                "processors) — statistically equivalent but not "
                "bit-identical (different draw order, deferred "
                "reconciliation), so Welch must see agreement inside the "
                "modeling band, not equality; the exact CTMC oracle "
                "keeps the mutation smoke honest (both SAN kernels are "
                "sampled, so a perturbation can only surface against it)"
            ),
            parameters=ModelParameters(),
            backends=("san-sim", "san-sim-batched", "ctmc"),
            plan=EvaluationPlan(
                metrics=(USEFUL_WORK_FRACTION,),
                simulation=SimulationPlan(
                    warmup=2 * HOUR,
                    observation=300 * HOUR,
                    replications=12,
                ),
            ),
            policy=exact_policy,
        ),
        DifferentialCase(
            name="cluster-consistency",
            description=(
                "message-level cluster trajectory against the exact "
                "oracles; single-trajectory output is unvalidated, so "
                "this case documents the INCONCLUSIVE path and bounds "
                "gross drift via the SAN pairs"
            ),
            parameters=ModelParameters(
                n_processors=512, processors_per_node=8
            ),
            backends=("san-sim", "ctmc", "cluster"),
            plan=EvaluationPlan(
                metrics=(USEFUL_WORK_FRACTION,),
                simulation=SimulationPlan(
                    warmup=2 * HOUR,
                    observation=200 * HOUR,
                    replications=8,
                ),
                duration=200 * HOUR,
            ),
            policy=exact_policy,
        ),
        DifferentialCase(
            name="incremental-vs-flat",
            description=(
                "incremental checkpointing at its reduction point "
                "(compression_ratio=1, full_checkpoint_period=1) against "
                "the flat protocol on the same backend and seeds — the "
                "write/read factors are exactly 1.0, so the samples must "
                "be bit-identical, like the kernel-equivalence case"
            ),
            parameters=incremental_params,
            backends=(
                "san-sim",
                "san-sim@incremental:compression_ratio=1,"
                "full_checkpoint_period=1",
            ),
            plan=EvaluationPlan(
                metrics=(USEFUL_WORK_FRACTION,),
                simulation=SimulationPlan(
                    warmup=1 * HOUR,
                    observation=120 * HOUR,
                    replications=8,
                ),
            ),
            policy=TolerancePolicy(alpha=0.01, rel_tolerance=0.0,
                                   abs_tolerance=1e-12),
        ),
        DifferentialCase(
            name="adaptive-vs-flat",
            description=(
                "failure-rate-adaptive checkpoint interval with the rate "
                "frozen at 2*delta/interval^2, so the chosen interval "
                "equals the flat case's 30 minutes up to ulps; must agree "
                "within the modeling band with flat san-sim and the exact "
                "CTMC anchor (the adaptive participant runs on san-sim "
                "because the exact backends model only the flat protocol)"
            ),
            parameters=adaptive_params,
            backends=(
                "san-sim",
                f"san-sim@adaptive:failure_rate={adaptive_frozen_rate!r}",
                "ctmc",
            ),
            plan=EvaluationPlan(
                metrics=(USEFUL_WORK_FRACTION,),
                simulation=SimulationPlan(
                    warmup=2 * HOUR,
                    observation=300 * HOUR,
                    replications=12,
                ),
            ),
            policy=exact_policy,
        ),
    ]
    if scale != 1.0:
        cases = [case.scaled(scale) for case in cases]
    return cases
