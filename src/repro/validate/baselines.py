"""Golden statistical baselines: record once, check for drift forever.

A baseline file (``baselines/VALIDATE_<case>.json``) freezes what
every backend answered for one differential case — mean, confidence
half-width, replication count and oracle kind per backend, per root
seed — stamped with the baseline schema version, the package version,
the seed policy and the tolerance policy, the same attribution
discipline as the PR-4 run manifests.

``record`` evaluates the cases fresh and (atomically) writes the
files; ``check`` re-evaluates and reports **per-point drift**: the
absolute difference of each backend/seed point against its recorded
value, judged against the case's tolerance band. Because the seed
policy is deterministic, a healthy checkout reproduces every point
bit-for-bit; any drift at all localises a behavioural change to one
backend at one configuration and seed.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .._version import __version__
from .differential import DifferentialCase, run_case
from .stats import SampleSummary

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "BASELINE_PREFIX",
    "BaselineError",
    "PointCheck",
    "baseline_path",
    "record_baselines",
    "check_baselines",
]

#: Version of the baseline JSON layout; loaders reject other versions.
BASELINE_SCHEMA_VERSION = 1

#: File-name prefix of every baseline this module owns.
BASELINE_PREFIX = "VALIDATE_"

#: How root seeds become replication seeds, recorded so a future
#: reader can tell whether a drift is a policy change or a bug.
SEED_POLICY = "StreamRegistry(seed).spawn(replication).seed"


class BaselineError(Exception):
    """A baseline file is missing, unreadable, or foreign-schema."""


@dataclass(frozen=True)
class PointCheck:
    """Drift verdict for one backend at one case and seed."""

    case: str
    seed: int
    backend: str
    difference: float
    band: float
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        marker = "ok" if self.ok else "DRIFT"
        extra = f" {self.detail}" if self.detail else ""
        return (
            f"[{marker}] {self.case} seed={self.seed} {self.backend}: "
            f"|drift|={self.difference:.3g} band={self.band:.3g}{extra}"
        )


def baseline_path(directory: "str | Path", case_name: str) -> Path:
    """Where the named case's baseline lives under ``directory``."""
    return Path(directory) / f"{BASELINE_PREFIX}{case_name}.json"


def _summary_payload(summary: SampleSummary) -> Dict[str, object]:
    return {
        "mean": summary.mean,
        "half_width": summary.half_width,
        "samples": summary.samples,
        "validated": summary.validated,
    }


def _summary_from_payload(payload: Dict[str, object]) -> SampleSummary:
    return SampleSummary(
        mean=float(payload["mean"]),
        half_width=float(payload.get("half_width", 0.0)),
        samples=int(payload.get("samples", 0)),
        validated=bool(payload.get("validated", True)),
    )


def _write_atomic(path: Path, payload: Dict[str, object]) -> None:
    """Temp file + fsync + rename, the manifest crash discipline."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def _load_baseline(path: Path) -> Dict[str, object]:
    if not path.exists():
        raise BaselineError(
            f"no baseline at {path}; record one with "
            f"'repro validate --record'"
        )
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    version = payload.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise BaselineError(
            f"baseline {path} has schema version {version!r}; this package "
            f"reads version {BASELINE_SCHEMA_VERSION}"
        )
    return payload


def record_baselines(
    cases: Sequence[DifferentialCase],
    seeds: Iterable[int],
    directory: "str | Path",
) -> List[Path]:
    """Evaluate every case at every seed and freeze the answers.

    Existing baselines for the same cases are replaced wholesale —
    a recording *is* the new truth; partial merges would let stale
    seeds linger unnoticed.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("recording a baseline needs at least one seed")
    paths: List[Path] = []
    for case in cases:
        entries: Dict[str, Dict[str, object]] = {}
        skipped: Dict[str, str] = {}
        for seed in seeds:
            outcome = run_case(case, seed=seed)
            entries[str(seed)] = {
                backend: _summary_payload(summary)
                for backend, summary in sorted(outcome.summaries.items())
            }
            skipped = dict(outcome.skipped)
        payload: Dict[str, object] = {
            "schema_version": BASELINE_SCHEMA_VERSION,
            "repro_version": __version__,
            "case": case.name,
            "description": case.description,
            "metric": case.metric,
            "seed_policy": SEED_POLICY,
            "policy": {
                "alpha": case.policy.alpha,
                "rel_tolerance": case.policy.rel_tolerance,
                "abs_tolerance": case.policy.abs_tolerance,
            },
            "plan": {
                "warmup": case.plan.simulation.warmup,
                "observation": case.plan.simulation.observation,
                "replications": case.plan.simulation.replications,
            },
            "skipped": skipped,
            "entries": entries,
        }
        path = baseline_path(directory, case.name)
        _write_atomic(path, payload)
        paths.append(path)
    return paths


def check_baselines(
    cases: Sequence[DifferentialCase],
    directory: "str | Path",
    seeds: Optional[Iterable[int]] = None,
) -> List[PointCheck]:
    """Re-evaluate and compare every point against its recording.

    With ``seeds=None`` every recorded seed is checked. A missing
    baseline file raises :class:`BaselineError` (that is setup rot,
    not drift); a missing backend or seed *inside* a file is reported
    as a failing point.
    """
    checks: List[PointCheck] = []
    requested = None if seeds is None else [str(s) for s in seeds]
    for case in cases:
        payload = _load_baseline(baseline_path(directory, case.name))
        entries = dict(payload.get("entries", {}))
        seed_keys = requested if requested is not None else sorted(entries)
        for seed_key in seed_keys:
            seed = int(seed_key)
            stored = entries.get(seed_key)
            if stored is None:
                checks.append(
                    PointCheck(
                        case.name, seed, "*", float("nan"), 0.0, False,
                        detail=f"seed {seed} not recorded in the baseline",
                    )
                )
                continue
            outcome = run_case(case, seed=seed)
            for backend, recorded_payload in sorted(stored.items()):
                recorded = _summary_from_payload(dict(recorded_payload))
                fresh = outcome.summaries.get(backend)
                band = case.policy.band(recorded.mean, recorded.mean)
                if fresh is None:
                    reason = outcome.skipped.get(backend, "produced no result")
                    checks.append(
                        PointCheck(
                            case.name, seed, backend, float("nan"), band,
                            False, detail=f"backend missing: {reason}",
                        )
                    )
                    continue
                difference = abs(fresh.mean - recorded.mean)
                details: List[str] = []
                ok = difference <= band
                if fresh.samples != recorded.samples:
                    ok = False
                    details.append(
                        f"replications changed "
                        f"{recorded.samples} -> {fresh.samples}"
                    )
                if difference > 0:
                    details.append("non-bit-identical rerun")
                checks.append(
                    PointCheck(
                        case.name, seed, backend, difference, band, ok,
                        detail="; ".join(details),
                    )
                )
            for backend in sorted(set(outcome.summaries) - set(stored)):
                checks.append(
                    PointCheck(
                        case.name, seed, backend, float("nan"), 0.0, False,
                        detail="backend produced a result but has no "
                        "recorded point; re-record the baseline",
                    )
                )
    return checks
