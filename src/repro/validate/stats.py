"""Two-sample statistics for cross-backend comparisons.

Backends report either *exact* numbers (zero sampling error: the CTMC
solve, the renewal closed forms) or *sampled* estimates (a mean, a
confidence half-width, and a replication count). Comparing them
correctly needs three different instruments:

* sampled vs sampled — Welch's unequal-variance two-sample t-test,
  with the standard errors recovered from the reported half-widths
  via :func:`repro.san.statistics.standard_error_of`;
* sampled vs exact — a one-sample t-test of the simulated mean
  against the exact value;
* exact vs exact — a plain difference against the tolerance band
  (two deterministic numbers either agree or they do not).

Statistical significance alone is the wrong acceptance criterion
between *different model abstractions*: with enough replications any
systematic abstraction gap becomes "significant" even when it is
far below the modeling tolerance. The verdict therefore combines
both: backends AGREE when the difference is inside the tolerance
band **or** statistically indistinguishable, and DISAGREE only when
it is both outside the band and significant.

An interval built from a single observation carries no variance
information (its ``validated=False`` flag, see PR-4); such results
can never *certify* agreement — they yield INCONCLUSIVE, not AGREE.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from scipy import stats as _scipy_stats

from ..san.statistics import ConfidenceInterval, standard_error_of, t_critical

__all__ = [
    "AGREE",
    "DISAGREE",
    "INCONCLUSIVE",
    "SampleSummary",
    "Comparison",
    "TolerancePolicy",
    "welch_statistic",
    "compare_summaries",
]

#: Verdicts of one comparison. AGREE is a positive certification;
#: INCONCLUSIVE means "no statistical basis to certify" (for example
#: an n=1 interval), which the drivers report but never count as
#: agreement.
AGREE = "agree"
DISAGREE = "disagree"
INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class SampleSummary:
    """One backend's answer for one metric, in comparable form.

    ``samples == 0`` marks an exact (zero-sampling-error) value;
    ``validated`` mirrors the interval flag — a sampled summary with
    one replication is unvalidated and cannot certify anything.
    """

    mean: float
    half_width: float = 0.0
    samples: int = 0
    confidence: float = 0.95
    validated: bool = True

    @property
    def exact(self) -> bool:
        """True for zero-sampling-error values."""
        return self.samples == 0

    @property
    def standard_error(self) -> Optional[float]:
        """Standard error of the mean; ``None`` when unavailable
        (exact values have none, unvalidated intervals hide theirs)."""
        if self.exact:
            return 0.0
        if not self.validated or self.samples < 2:
            return None
        return standard_error_of(self.to_interval())

    def to_interval(self) -> ConfidenceInterval:
        """The equivalent :class:`ConfidenceInterval`."""
        return ConfidenceInterval(
            self.mean,
            self.half_width,
            self.confidence,
            max(self.samples, 1),
            validated=self.validated and self.samples >= 1,
        )

    @classmethod
    def from_interval(cls, interval: ConfidenceInterval) -> "SampleSummary":
        """Summary of a sampled estimate."""
        return cls(
            mean=interval.mean,
            half_width=interval.half_width,
            samples=interval.samples,
            confidence=interval.confidence,
            validated=interval.validated,
        )

    @classmethod
    def exact_value(cls, value: float) -> "SampleSummary":
        """Summary of an exact (deterministic) value."""
        return cls(mean=value, half_width=0.0, samples=0, validated=True)


@dataclass(frozen=True)
class TolerancePolicy:
    """When two backends count as agreeing.

    Attributes
    ----------
    alpha:
        Significance level of the statistical test. Differences with
        ``p >= alpha`` are statistically indistinguishable.
    rel_tolerance / abs_tolerance:
        The modeling-tolerance band: different abstractions (renewal
        closed form vs full SAN) are allowed to differ systematically
        by up to ``max(abs_tolerance, rel_tolerance * scale)`` where
        ``scale`` is the larger magnitude of the two means.
    """

    alpha: float = 0.01
    rel_tolerance: float = 0.02
    abs_tolerance: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.rel_tolerance < 0 or self.abs_tolerance < 0:
            raise ValueError("tolerances must be >= 0")

    def band(self, a: float, b: float) -> float:
        """The allowed absolute difference for means ``a`` and ``b``."""
        return max(self.abs_tolerance, self.rel_tolerance * max(abs(a), abs(b)))


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing two summaries under a policy."""

    verdict: str
    method: str
    difference: float
    band: float
    statistic: Optional[float] = None
    p_value: Optional[float] = None
    detail: str = ""

    @property
    def passed(self) -> bool:
        """Only a positive AGREE counts as passing."""
        return self.verdict == AGREE

    def __str__(self) -> str:
        bits = [
            f"{self.verdict.upper()} ({self.method})",
            f"diff={self.difference:.4g}",
            f"band={self.band:.4g}",
        ]
        if self.p_value is not None:
            bits.append(f"p={self.p_value:.3g}")
        if self.detail:
            bits.append(self.detail)
        return " ".join(bits)


def welch_statistic(
    a: SampleSummary, b: SampleSummary
) -> "tuple[float, float, float]":
    """Welch's t statistic, degrees of freedom, and two-sided p-value
    for two sampled summaries (Welch–Satterthwaite approximation)."""
    se_a, se_b = a.standard_error, b.standard_error
    if se_a is None or se_b is None:
        raise ValueError("both summaries need an estimable standard error")
    var = se_a**2 + se_b**2
    if var == 0.0:
        # Two zero-variance estimates: identical means agree trivially,
        # different means differ with certainty.
        return (math.inf if a.mean != b.mean else 0.0, 1.0,
                0.0 if a.mean != b.mean else 1.0)
    t = (a.mean - b.mean) / math.sqrt(var)
    df = var**2 / (
        se_a**4 / (a.samples - 1) + se_b**4 / (b.samples - 1)
    ) if se_a or se_b else 1.0
    df = max(df, 1.0)
    p = 2.0 * float(_scipy_stats.t.sf(abs(t), df=df))
    return t, df, p


def _one_sample(
    sampled: SampleSummary, exact: SampleSummary
) -> "tuple[float, float]":
    """One-sample t statistic and p-value of ``sampled`` against the
    exact value."""
    se = sampled.standard_error
    if se is None:
        raise ValueError("sampled summary needs an estimable standard error")
    if se == 0.0:
        return (math.inf if sampled.mean != exact.mean else 0.0,
                0.0 if sampled.mean != exact.mean else 1.0)
    t = (sampled.mean - exact.mean) / se
    p = 2.0 * float(_scipy_stats.t.sf(abs(t), df=sampled.samples - 1))
    return t, p


def compare_summaries(
    a: SampleSummary, b: SampleSummary, policy: TolerancePolicy
) -> Comparison:
    """Compare two summaries, dispatching on their statistical nature.

    The verdict logic (see the module docstring): inside the band or
    statistically indistinguishable -> AGREE; outside the band *and*
    significant -> DISAGREE; no usable variance information on a
    sampled side -> INCONCLUSIVE (never AGREE on n=1 evidence).
    """
    diff = abs(a.mean - b.mean)
    band = policy.band(a.mean, b.mean)

    if a.exact and b.exact:
        verdict = AGREE if diff <= band else DISAGREE
        return Comparison(verdict, "exact-difference", diff, band)

    # At least one sampled side. An unvalidated sampled side cannot
    # certify agreement no matter how close the means look.
    for side in (a, b):
        if not side.exact and (not side.validated or side.samples < 2):
            return Comparison(
                INCONCLUSIVE,
                "unvalidated",
                diff,
                band,
                detail=(
                    f"a sampled side has n={side.samples} "
                    "(validated=False); no statistical basis to certify"
                ),
            )

    if a.exact or b.exact:
        sampled, exact = (b, a) if a.exact else (a, b)
        t, p = _one_sample(sampled, exact)
        method = "one-sample-t"
    else:
        t, _, p = welch_statistic(a, b)
        method = "welch-t"

    if diff <= band or p >= policy.alpha:
        return Comparison(AGREE, method, diff, band, statistic=t, p_value=p)
    return Comparison(
        DISAGREE,
        method,
        diff,
        band,
        statistic=t,
        p_value=p,
        detail=f"difference exceeds the tolerance band at alpha={policy.alpha}",
    )
