"""Goodness-of-fit checks: samplers against their closed forms.

The stochastic engine is only as trustworthy as its primitive
samplers. Every distribution in :mod:`repro.san.distributions` now
carries a closed-form ``cdf``; this module tests the *sampler* against
that CDF (Kolmogorov–Smirnov for continuous laws, chi-square on
equiprobable bins as an independent second instrument), and the
failure arrival processes in :mod:`repro.failures.processes` against
their analytic inter-arrival laws and average rates.

All checks draw their randomness through
:class:`repro.san.rng.StreamRegistry`, the repository's single seeding
entry point, so a reported failure is reproducible from the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np
from scipy import stats as _scipy_stats

from ..failures.processes import (
    BurstProcess,
    ModulatedPoissonProcess,
    PoissonProcess,
)
from ..san.distributions import (
    Distribution,
    Erlang,
    Exponential,
    Hyperexponential,
    LogNormal,
    MaxOfExponentials,
    Uniform,
    Weibull,
)
from ..san.rng import StreamRegistry

__all__ = [
    "GofResult",
    "ks_check",
    "chi_square_check",
    "check_sampler",
    "check_poisson_process",
    "check_modulated_process",
    "check_burst_process",
    "default_distribution_suite",
    "run_distribution_checks",
    "run_failure_process_checks",
]


@dataclass(frozen=True)
class GofResult:
    """Outcome of one goodness-of-fit check."""

    name: str
    test: str
    statistic: float
    p_value: float
    samples: int
    alpha: float
    detail: str = ""

    @property
    def passed(self) -> bool:
        """The null (sampler matches the closed form) survives."""
        return self.p_value >= self.alpha

    def __str__(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        extra = f" {self.detail}" if self.detail else ""
        return (
            f"[{marker}] {self.name} ({self.test}): "
            f"stat={self.statistic:.4g} p={self.p_value:.3g} "
            f"n={self.samples}{extra}"
        )


def ks_check(
    name: str,
    samples: Sequence[float],
    cdf: Callable[[float], float],
    alpha: float = 0.01,
) -> GofResult:
    """One-sample Kolmogorov–Smirnov test of ``samples`` against a
    closed-form CDF."""

    def vector_cdf(values: np.ndarray) -> np.ndarray:
        # kstest hands the whole sorted sample to the CDF at once; the
        # distribution CDFs are scalar functions.
        return np.array([cdf(float(v)) for v in np.atleast_1d(values)])

    statistic, p_value = _scipy_stats.kstest(np.asarray(samples), vector_cdf)
    return GofResult(
        name, "ks", float(statistic), float(p_value), len(samples), alpha
    )


def chi_square_check(
    name: str,
    samples: Sequence[float],
    cdf: Callable[[float], float],
    bins: int = 20,
    alpha: float = 0.01,
) -> GofResult:
    """Chi-square test on bins of (asymptotically) equal probability.

    Bin edges come from the empirical quantiles, expected counts from
    the closed-form CDF over those edges — an instrument independent
    of the KS statistic's supremum norm.
    """
    data = np.sort(np.asarray(samples, dtype=float))
    n = len(data)
    if n < bins * 5:
        raise ValueError(
            f"need at least {bins * 5} samples for {bins} bins, got {n}"
        )
    quantiles = np.linspace(0.0, 1.0, bins + 1)[1:-1]
    edges = np.concatenate(([-np.inf], np.quantile(data, quantiles), [np.inf]))
    observed, _ = np.histogram(data, bins=edges)
    cdf_at = [0.0] + [float(cdf(edge)) for edge in edges[1:-1]] + [1.0]
    expected = np.diff(cdf_at) * n
    # Merge vanishing-expectation bins into their neighbour to keep the
    # chi-square approximation honest.
    keep = expected > 1e-9
    observed, expected = observed[keep], expected[keep]
    statistic, p_value = _scipy_stats.chisquare(
        observed, expected * (observed.sum() / expected.sum())
    )
    return GofResult(
        name, "chi-square", float(statistic), float(p_value), n, alpha,
        detail=f"bins={len(observed)}",
    )


def check_sampler(
    name: str,
    distribution: Distribution,
    n: int = 4000,
    seed: int = 0,
    alpha: float = 0.01,
) -> List[GofResult]:
    """KS + chi-square of one distribution's sampler against its own
    closed-form ``cdf``."""
    rng = StreamRegistry(seed).get(f"validate/gof/{name}")
    samples = [distribution.sample(rng) for _ in range(n)]
    return [
        ks_check(name, samples, distribution.cdf, alpha=alpha),
        chi_square_check(name, samples, distribution.cdf, alpha=alpha),
    ]


# ----------------------------------------------------------------------
# Failure arrival processes
# ----------------------------------------------------------------------

def check_poisson_process(
    rate: float = 2.0,
    horizon: float = 4000.0,
    seed: int = 0,
    alpha: float = 0.01,
) -> List[GofResult]:
    """The homogeneous process must have exponential inter-arrivals
    (KS) and a Poisson-consistent arrival count (two-sided exact
    tail)."""
    rng = StreamRegistry(seed).get("validate/gof/poisson")
    arrivals = PoissonProcess(rate, rng).arrivals(horizon)
    gaps = np.diff([0.0] + list(arrivals))
    results = [
        ks_check(
            "poisson-interarrivals",
            gaps,
            Exponential(rate).cdf,
            alpha=alpha,
        )
    ]
    expected = rate * horizon
    count = len(arrivals)
    # Two-sided exact Poisson tail probability of a count this extreme.
    lower = float(_scipy_stats.poisson.cdf(count, expected))
    upper = float(_scipy_stats.poisson.sf(count - 1, expected))
    p_value = min(1.0, 2.0 * min(lower, upper))
    results.append(
        GofResult(
            "poisson-count",
            "poisson-tail",
            float(count),
            p_value,
            count,
            alpha,
            detail=f"expected {expected:.0f}",
        )
    )
    return results


def _rate_check(
    name: str,
    count: int,
    expected: float,
    alpha: float,
    detail: str = "",
) -> GofResult:
    """Normal-approximation check of an arrival count against its
    expectation (the count is a sum of many thin-window indicators)."""
    if expected <= 0:
        raise ValueError(f"expected count must be > 0, got {expected}")
    z = (count - expected) / math.sqrt(expected)
    p_value = 2.0 * float(_scipy_stats.norm.sf(abs(z)))
    return GofResult(
        name, "rate-z", z, p_value, count, alpha,
        detail=detail or f"expected {expected:.0f}",
    )


def check_modulated_process(
    base_rate: float = 1.0,
    r: float = 9.0,
    alpha_fraction: float = 0.2,
    window: float = 50.0,
    horizon: float = 40000.0,
    seed: int = 0,
    alpha: float = 0.01,
) -> GofResult:
    """The two-phase modulated process must realise its advertised
    time-averaged rate ``base_rate * (1 + alpha * r)``.

    The count variance of a Markov-modulated Poisson process exceeds
    the Poisson variance; a Poisson-width z-band would over-reject, so
    the z-score is corrected by the MMPP over-dispersion factor
    (the long-window limit of var/mean for the two-phase chain).
    """
    rng = StreamRegistry(seed).get("validate/gof/modulated")
    process = ModulatedPoissonProcess(base_rate, r, alpha_fraction, window, rng)
    count = len(process.arrivals(horizon))
    expected = process.average_rate * horizon
    # Over-dispersion of the two-phase MMPP (long-horizon limit):
    # var/mean = 1 + 2 a(1-a) (dr)^2 T_c / mean_rate, with T_c the
    # phase-mixing time  (1/quiet_mean + 1/window)^{-1}.
    a = alpha_fraction
    delta = base_rate * r  # rate gap between the phases
    t_mix = 1.0 / (1.0 / process.quiet_mean + 1.0 / window)
    over = 1.0 + 2.0 * a * (1.0 - a) * delta**2 * t_mix / process.average_rate
    z = (count - expected) / math.sqrt(expected * over)
    p_value = 2.0 * float(_scipy_stats.norm.sf(abs(z)))
    return GofResult(
        "modulated-average-rate", "rate-z", z, p_value, count, alpha,
        detail=f"expected {expected:.0f}, over-dispersion x{over:.1f}",
    )


def check_burst_process(
    base_rate: float = 1.0,
    r: float = 5.0,
    p_e: float = 0.3,
    window: float = 2.0,
    horizon: float = 30000.0,
    seed: int = 0,
    alpha: float = 0.01,
) -> List[GofResult]:
    """Burst semantics: with ``p_e = 0`` the process degenerates to the
    base Poisson process exactly; with bursts on, the arrival count
    must exceed the base expectation (bursts only ever add)."""
    streams = StreamRegistry(seed)
    plain = BurstProcess(
        base_rate, r, 0.0, window, streams.get("validate/gof/burst-off")
    ).arrivals(horizon)
    results = [
        _rate_check(
            "burst-off-reduces-to-poisson",
            len(plain),
            base_rate * horizon,
            alpha,
        )
    ]
    bursty = BurstProcess(
        base_rate, r, p_e, window, streams.get("validate/gof/burst-on")
    ).arrivals(horizon)
    # One-sided: bursts can only add arrivals, so the count must sit
    # clearly above the base expectation. p here is the probability of
    # seeing this much excess *or less* under "bursts add nothing" —
    # near 1 when bursts demonstrably fire, tiny when they do not.
    base_expected = base_rate * horizon
    z = (len(bursty) - base_expected) / math.sqrt(base_expected)
    results.append(
        GofResult(
            "burst-on-adds-arrivals",
            "excess-z",
            z,
            float(_scipy_stats.norm.cdf(z)),
            len(bursty),
            alpha,
            detail=f"{len(bursty)} bursty vs {len(plain)} plain",
        )
    )
    return results


def default_distribution_suite(seed: int = 0) -> "dict[str, Distribution]":
    """The samplers the validation CLI checks by default — every law
    the checkpoint model actually fires, at paper-like parameters."""
    return {
        "exponential": Exponential(1.0 / 300.0),
        "uniform": Uniform(5.0, 15.0),
        "erlang2": Erlang(2, 1.0 / 300.0),
        "weibull": Weibull(1.5, 200.0),
        "lognormal": LogNormal(2.0, 0.5),
        "hyperexponential": Hyperexponential(
            [0.7, 0.3], [1.0 / 100.0, 1.0 / 1000.0]
        ),
        "max-of-exponentials": MaxOfExponentials(1.0 / 10.0, 512),
    }


def run_distribution_checks(
    seed: int = 0, n: int = 4000, alpha: float = 0.01
) -> List[GofResult]:
    """GOF of every default sampler against its closed form."""
    results: List[GofResult] = []
    for name, distribution in default_distribution_suite(seed).items():
        results.extend(check_sampler(name, distribution, n=n, seed=seed, alpha=alpha))
    return results


def run_failure_process_checks(seed: int = 0, alpha: float = 0.01) -> List[GofResult]:
    """GOF of the failure arrival processes."""
    results = check_poisson_process(seed=seed, alpha=alpha)
    results.append(check_modulated_process(seed=seed, alpha=alpha))
    results.extend(check_burst_process(seed=seed, alpha=alpha))
    return results
