"""Aggregate validation report: one object, one text rendering, one
JSON form.

The CLI, the CI job and the test-suite all consume the same
:class:`ValidationReport`, so "what passed" has exactly one
definition: every goodness-of-fit null survives, every metamorphic
invariance holds, no differential case positively disagrees, and no
baseline point drifts. INCONCLUSIVE differential pairs are listed —
they are information, not success or failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .baselines import PointCheck
from .differential import CaseResult
from .gof import GofResult
from .metamorphic import MetamorphicCheck
from .stats import DISAGREE, INCONCLUSIVE

__all__ = ["ValidationReport", "run_full_suite"]


@dataclass
class ValidationReport:
    """Everything one validation run produced."""

    seed: int
    gof: List[GofResult] = field(default_factory=list)
    metamorphic: List[MetamorphicCheck] = field(default_factory=list)
    differential: List[CaseResult] = field(default_factory=list)
    baseline_checks: List[PointCheck] = field(default_factory=list)

    @property
    def failures(self) -> List[str]:
        """Human-readable description of every failing item."""
        out: List[str] = []
        out.extend(str(r) for r in self.gof if not r.passed)
        out.extend(str(c) for c in self.metamorphic if not c.passed)
        for case in self.differential:
            if not case.passed:
                out.append(
                    f"differential case {case.case.name} (seed {case.seed}): "
                    + "; ".join(
                        str(p) for p in case.pairs
                        if p.comparison.verdict == DISAGREE
                    )
                )
        out.extend(str(p) for p in self.baseline_checks if not p.ok)
        return out

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def inconclusive_pairs(self) -> int:
        return sum(
            1
            for case in self.differential
            for pair in case.pairs
            if pair.comparison.verdict == INCONCLUSIVE
        )

    def to_json_dict(self) -> Dict[str, object]:
        """Summary suitable for ``--json`` output and run manifests."""
        return {
            "seed": self.seed,
            "passed": self.passed,
            "gof": {
                "total": len(self.gof),
                "failed": sum(1 for r in self.gof if not r.passed),
            },
            "metamorphic": {
                "total": len(self.metamorphic),
                "failed": sum(1 for c in self.metamorphic if not c.passed),
            },
            "differential": {
                "cases": len(self.differential),
                "disagreements": sum(
                    1 for c in self.differential if not c.passed
                ),
                "inconclusive_pairs": self.inconclusive_pairs,
                "verdicts": {
                    c.case.name: c.verdict for c in self.differential
                },
            },
            "baseline": {
                "points": len(self.baseline_checks),
                "drifted": sum(
                    1 for p in self.baseline_checks if not p.ok
                ),
            },
            "failures": self.failures,
        }

    def render(self) -> str:
        """Multi-line human report (the CLI's default output)."""
        lines: List[str] = [f"validation report (seed {self.seed})"]
        if self.gof:
            lines.append("")
            lines.append("goodness-of-fit:")
            lines.extend(f"  {result}" for result in self.gof)
        if self.metamorphic:
            lines.append("")
            lines.append("metamorphic invariances:")
            lines.extend(f"  {check}" for check in self.metamorphic)
        if self.differential:
            lines.append("")
            lines.append("differential cases:")
            for case in self.differential:
                lines.append(
                    f"  {case.case.name}: {case.verdict.upper()}"
                    + (f" (perturbed: {', '.join(case.perturbed)})"
                       if case.perturbed else "")
                )
                lines.extend(f"    {pair}" for pair in case.pairs)
                for backend, reason in sorted(case.skipped.items()):
                    lines.append(f"    skipped {backend}: {reason}")
        if self.baseline_checks:
            lines.append("")
            lines.append("baseline drift:")
            lines.extend(f"  {point}" for point in self.baseline_checks)
        lines.append("")
        if self.passed:
            extra = (
                f" ({self.inconclusive_pairs} inconclusive pair(s))"
                if self.inconclusive_pairs
                else ""
            )
            lines.append(f"PASS{extra}")
        else:
            lines.append(f"FAIL: {len(self.failures)} failure(s)")
            lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)


def run_full_suite(
    seed: int = 0,
    scale: float = 1.0,
    perturb: Optional[Dict[str, float]] = None,
    include_gof: bool = True,
    include_metamorphic: bool = True,
    include_differential: bool = True,
    case_names: Optional[List[str]] = None,
    backends: Optional[List[str]] = None,
) -> ValidationReport:
    """Run the standing validation suite at one root seed.

    ``backends`` restricts the differential layer's cases to
    participants whose base backend id (the part before any
    ``@strategy`` suffix) is in the list; cases left with fewer than
    two participants are dropped entirely (see
    :func:`~repro.validate.differential.filter_cases_by_backends`).
    """
    from .differential import default_cases, filter_cases_by_backends, run_cases
    from .gof import run_distribution_checks, run_failure_process_checks
    from .metamorphic import run_metamorphic_checks

    report = ValidationReport(seed=seed)
    if include_gof:
        report.gof.extend(run_distribution_checks(seed=seed))
        report.gof.extend(run_failure_process_checks(seed=seed))
    if include_metamorphic:
        report.metamorphic.extend(run_metamorphic_checks(seed=seed))
    if include_differential:
        cases = default_cases(scale)
        if case_names:
            known = {case.name for case in cases}
            unknown = sorted(set(case_names) - known)
            if unknown:
                raise ValueError(
                    f"unknown differential case(s): {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(known))}"
                )
            cases = [case for case in cases if case.name in case_names]
        if backends is not None:
            cases = filter_cases_by_backends(cases, backends)
        report.differential.extend(run_cases(cases, seed=seed, perturb=perturb))
    return report
