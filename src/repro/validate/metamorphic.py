"""Metamorphic properties of the SAN executive.

A discrete-event simulator has invariances that hold regardless of the
model's numbers; breaking any of them means the *engine* is wrong even
if every individual result still looks plausible:

* **seed determinism** — the same seed reproduces a run bit-for-bit;
  different seeds produce different trajectories;
* **time-rescaling invariance** — multiplying every rate of an
  all-exponential model by ``c`` and simulating for ``horizon / c``
  is the same process on a rescaled clock, so every *time-average*
  reward is unchanged (and the event count identical, because the
  trajectory is the same sequence of jumps);
* **place-relabeling invariance** — renaming places (activity names,
  and therefore RNG streams, untouched) cannot change any number;
* **merge-of-replications consistency** — running ``2k`` replications
  in one call equals running two ``k``-replication halves with the
  same seed policy and pooling; the per-replication samples are
  byte-identical and the pooled mean is the grand mean.

Each check returns a :class:`MetamorphicCheck` so the validation CLI
and the test suite share one implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..core.parameters import ModelParameters
from ..core.simulation import SimulationPlan, simulate
from ..san import (
    Arc,
    Case,
    Exponential,
    RewardVariable,
    SANModel,
    Simulator,
    StreamRegistry,
    TimedActivity,
)

__all__ = [
    "MetamorphicCheck",
    "check_seed_determinism",
    "check_time_rescaling",
    "check_place_relabeling",
    "check_merge_of_replications",
    "run_metamorphic_checks",
]


@dataclass(frozen=True)
class MetamorphicCheck:
    """Outcome of one engine-invariance check."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        return f"[{marker}] {self.name}: {self.detail}"


def _chain_model(scale: float = 1.0, prefix: str = "") -> SANModel:
    """A small all-exponential checkpoint-like chain.

    ``scale`` multiplies every rate (the time-rescaling transform);
    ``prefix`` renames the places only (the relabeling transform —
    activity names, and hence their RNG streams, stay fixed).
    """
    model = SANModel("metamorphic_chain")
    executing = model.add_place(f"{prefix}executing", initial=1)
    checkpointing = model.add_place(f"{prefix}checkpointing")
    recovering = model.add_place(f"{prefix}recovering")

    def transition(name: str, rate: float, source, target) -> None:
        model.add_activity(
            TimedActivity(
                name,
                Exponential(rate * scale),
                input_arcs=[Arc(source)],
                cases=[Case(output_arcs=[Arc(target)])],
            )
        )

    transition("trigger", 1.0 / 1800.0, executing, checkpointing)
    transition("ckpt_done", 1.0 / 60.0, checkpointing, executing)
    transition("fail_exec", 1.0 / 20000.0, executing, recovering)
    transition("fail_ckpt", 1.0 / 20000.0, checkpointing, recovering)
    transition("repair", 1.0 / 600.0, recovering, executing)
    return model


def _run_chain(
    seed: int,
    horizon: float,
    warmup: float = 0.0,
    scale: float = 1.0,
    prefix: str = "",
) -> "tuple[Dict[str, float], int]":
    """Time-average place occupancies of the chain and the event count."""
    model = _chain_model(scale=scale, prefix=prefix)
    rewards = [
        RewardVariable(
            state,
            rate=(lambda s, p=f"{prefix}{state}": float(s.tokens(p))),
            reads=[f"{prefix}{state}"],
        )
        for state in ("executing", "checkpointing", "recovering")
    ]
    simulator = Simulator(model, streams=StreamRegistry(seed))
    output = simulator.run(until=horizon, warmup=warmup, rewards=rewards)
    averages = {
        name: result.time_average for name, result in output.rewards.items()
    }
    return averages, output.event_count


def check_seed_determinism(
    seed: int = 0, horizon: float = 200_000.0
) -> MetamorphicCheck:
    """Same seed -> identical run; different seed -> different run."""
    first, events_first = _run_chain(seed, horizon)
    again, events_again = _run_chain(seed, horizon)
    other, _ = _run_chain(seed + 1, horizon)
    identical = first == again and events_first == events_again
    distinct = first != other
    return MetamorphicCheck(
        "seed-determinism",
        identical and distinct,
        (
            f"replay {'bit-identical' if identical else 'DIVERGED'} "
            f"({events_first} events); "
            f"seed {seed + 1} {'differs' if distinct else 'IDENTICAL (suspicious)'}"
        ),
    )


def check_time_rescaling(
    seed: int = 0,
    horizon: float = 200_000.0,
    scale: float = 8.0,
    tolerance: float = 1e-9,
) -> MetamorphicCheck:
    """Scaling every rate by ``c`` and the horizon by ``1/c`` leaves
    every time-average invariant and the jump sequence identical."""
    base, base_events = _run_chain(seed, horizon)
    scaled, scaled_events = _run_chain(seed, horizon / scale, scale=scale)
    worst = max(
        abs(base[name] - scaled[name]) / max(abs(base[name]), 1e-300)
        for name in base
    )
    passed = worst <= tolerance and base_events == scaled_events
    return MetamorphicCheck(
        "time-rescaling",
        passed,
        (
            f"worst relative drift {worst:.2e} over x{scale:g} rescale "
            f"({base_events} vs {scaled_events} events)"
        ),
    )


def check_place_relabeling(
    seed: int = 0, horizon: float = 200_000.0
) -> MetamorphicCheck:
    """Renaming every place must not change a single number."""
    base, base_events = _run_chain(seed, horizon)
    renamed, renamed_events = _run_chain(seed, horizon, prefix="relabeled_")
    passed = base == renamed and base_events == renamed_events
    return MetamorphicCheck(
        "place-relabeling",
        passed,
        (
            "bit-identical under renaming"
            if passed
            else f"diverged: {base} vs {renamed}"
        ),
    )


def check_merge_of_replications(
    seed: int = 0, replications: int = 4
) -> MetamorphicCheck:
    """One ``2k``-replication run equals two pooled ``k``-halves.

    The repository's seed policy derives replication ``k`` of root
    seed ``s`` from ``StreamRegistry(s).spawn(k)`` regardless of how
    replications are grouped into calls, so the per-replication
    samples must be byte-identical and the pooled mean the grand mean.
    """
    params = ModelParameters(n_processors=1024, processors_per_node=8)
    plan = SimulationPlan(warmup=3600.0, observation=40 * 3600.0,
                          replications=replications)
    merged = simulate(params, plan, seed=seed)

    half = replications // 2
    first = simulate(
        params,
        SimulationPlan(warmup=plan.warmup, observation=plan.observation,
                       replications=half),
        seed=seed,
    )
    # The second half re-runs replication indices [half, 2*half) by
    # hand through the same spawn policy.
    root = StreamRegistry(seed)
    second_samples: List[float] = []
    from ..core.simulation import run_single

    for replication in range(half, replications):
        measures = run_single(params, plan, root.spawn(replication).seed)
        second_samples.append(measures["useful_work"])

    samples_match = merged.samples == first.samples + second_samples
    pooled_mean = sum(first.samples + second_samples) / replications
    mean_match = math.isclose(
        merged.useful_work_fraction.mean, pooled_mean, rel_tol=1e-12
    )
    return MetamorphicCheck(
        "merge-of-replications",
        samples_match and mean_match,
        (
            f"samples {'identical' if samples_match else 'DIVERGED'}, "
            f"pooled mean {'consistent' if mean_match else 'INCONSISTENT'} "
            f"({merged.useful_work_fraction.mean:.6f} vs {pooled_mean:.6f})"
        ),
    )


def run_metamorphic_checks(seed: int = 0) -> List[MetamorphicCheck]:
    """Every engine-invariance check at one root seed."""
    return [
        check_seed_determinism(seed),
        check_time_rescaling(seed),
        check_place_relabeling(seed),
        check_merge_of_replications(seed),
    ]
