"""Metamorphic properties of the SAN executive.

A discrete-event simulator has invariances that hold regardless of the
model's numbers; breaking any of them means the *engine* is wrong even
if every individual result still looks plausible:

* **seed determinism** — the same seed reproduces a run bit-for-bit;
  different seeds produce different trajectories;
* **time-rescaling invariance** — multiplying every rate of an
  all-exponential model by ``c`` and simulating for ``horizon / c``
  is the same process on a rescaled clock, so every *time-average*
  reward is unchanged (and the event count identical, because the
  trajectory is the same sequence of jumps);
* **place-relabeling invariance** — renaming places (activity names,
  and therefore RNG streams, untouched) cannot change any number;
* **merge-of-replications consistency** — running ``2k`` replications
  in one call equals running two ``k``-replication halves with the
  same seed policy and pooling; the per-replication samples are
  byte-identical and the pooled mean is the grand mean.

The checkpointing-strategy zoo (:mod:`repro.strategies`) adds three
strategy-level invariances: every variant must **reduce** to the flat
protocol at its reduction point (incremental at
``compression_ratio=1, full_checkpoint_period=1``; adaptive with its
failure rate frozen so the interval rule lands on a fixed interval),
bit-identically, because strategies parameterise the one model builder
instead of forking it; and the incremental variant's effective
checkpoint overhead must be **monotone** in its compression ratio.

Each check returns a :class:`MetamorphicCheck` so the validation CLI
and the test suite share one implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..core.parameters import ModelParameters
from ..core.simulation import SimulationPlan, simulate
from ..san import (
    Arc,
    Case,
    Exponential,
    RewardVariable,
    SANModel,
    Simulator,
    StreamRegistry,
    TimedActivity,
)

__all__ = [
    "MetamorphicCheck",
    "check_seed_determinism",
    "check_time_rescaling",
    "check_place_relabeling",
    "check_merge_of_replications",
    "check_incremental_reduction",
    "check_adaptive_reduction",
    "check_compression_monotonicity",
    "run_metamorphic_checks",
]


@dataclass(frozen=True)
class MetamorphicCheck:
    """Outcome of one engine-invariance check."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        return f"[{marker}] {self.name}: {self.detail}"


def _chain_model(scale: float = 1.0, prefix: str = "") -> SANModel:
    """A small all-exponential checkpoint-like chain.

    ``scale`` multiplies every rate (the time-rescaling transform);
    ``prefix`` renames the places only (the relabeling transform —
    activity names, and hence their RNG streams, stay fixed).
    """
    model = SANModel("metamorphic_chain")
    executing = model.add_place(f"{prefix}executing", initial=1)
    checkpointing = model.add_place(f"{prefix}checkpointing")
    recovering = model.add_place(f"{prefix}recovering")

    def transition(name: str, rate: float, source, target) -> None:
        model.add_activity(
            TimedActivity(
                name,
                Exponential(rate * scale),
                input_arcs=[Arc(source)],
                cases=[Case(output_arcs=[Arc(target)])],
            )
        )

    transition("trigger", 1.0 / 1800.0, executing, checkpointing)
    transition("ckpt_done", 1.0 / 60.0, checkpointing, executing)
    transition("fail_exec", 1.0 / 20000.0, executing, recovering)
    transition("fail_ckpt", 1.0 / 20000.0, checkpointing, recovering)
    transition("repair", 1.0 / 600.0, recovering, executing)
    return model


def _run_chain(
    seed: int,
    horizon: float,
    warmup: float = 0.0,
    scale: float = 1.0,
    prefix: str = "",
) -> "tuple[Dict[str, float], int]":
    """Time-average place occupancies of the chain and the event count."""
    model = _chain_model(scale=scale, prefix=prefix)
    rewards = [
        RewardVariable(
            state,
            rate=(lambda s, p=f"{prefix}{state}": float(s.tokens(p))),
            reads=[f"{prefix}{state}"],
        )
        for state in ("executing", "checkpointing", "recovering")
    ]
    simulator = Simulator(model, streams=StreamRegistry(seed))
    output = simulator.run(until=horizon, warmup=warmup, rewards=rewards)
    averages = {
        name: result.time_average for name, result in output.rewards.items()
    }
    return averages, output.event_count


def check_seed_determinism(
    seed: int = 0, horizon: float = 200_000.0
) -> MetamorphicCheck:
    """Same seed -> identical run; different seed -> different run."""
    first, events_first = _run_chain(seed, horizon)
    again, events_again = _run_chain(seed, horizon)
    other, _ = _run_chain(seed + 1, horizon)
    identical = first == again and events_first == events_again
    distinct = first != other
    return MetamorphicCheck(
        "seed-determinism",
        identical and distinct,
        (
            f"replay {'bit-identical' if identical else 'DIVERGED'} "
            f"({events_first} events); "
            f"seed {seed + 1} {'differs' if distinct else 'IDENTICAL (suspicious)'}"
        ),
    )


def check_time_rescaling(
    seed: int = 0,
    horizon: float = 200_000.0,
    scale: float = 8.0,
    tolerance: float = 1e-9,
) -> MetamorphicCheck:
    """Scaling every rate by ``c`` and the horizon by ``1/c`` leaves
    every time-average invariant and the jump sequence identical."""
    base, base_events = _run_chain(seed, horizon)
    scaled, scaled_events = _run_chain(seed, horizon / scale, scale=scale)
    worst = max(
        abs(base[name] - scaled[name]) / max(abs(base[name]), 1e-300)
        for name in base
    )
    passed = worst <= tolerance and base_events == scaled_events
    return MetamorphicCheck(
        "time-rescaling",
        passed,
        (
            f"worst relative drift {worst:.2e} over x{scale:g} rescale "
            f"({base_events} vs {scaled_events} events)"
        ),
    )


def check_place_relabeling(
    seed: int = 0, horizon: float = 200_000.0
) -> MetamorphicCheck:
    """Renaming every place must not change a single number."""
    base, base_events = _run_chain(seed, horizon)
    renamed, renamed_events = _run_chain(seed, horizon, prefix="relabeled_")
    passed = base == renamed and base_events == renamed_events
    return MetamorphicCheck(
        "place-relabeling",
        passed,
        (
            "bit-identical under renaming"
            if passed
            else f"diverged: {base} vs {renamed}"
        ),
    )


def check_merge_of_replications(
    seed: int = 0, replications: int = 4
) -> MetamorphicCheck:
    """One ``2k``-replication run equals two pooled ``k``-halves.

    The repository's seed policy derives replication ``k`` of root
    seed ``s`` from ``StreamRegistry(s).spawn(k)`` regardless of how
    replications are grouped into calls, so the per-replication
    samples must be byte-identical and the pooled mean the grand mean.
    """
    params = ModelParameters(n_processors=1024, processors_per_node=8)
    plan = SimulationPlan(warmup=3600.0, observation=40 * 3600.0,
                          replications=replications)
    merged = simulate(params, plan, seed=seed)

    half = replications // 2
    first = simulate(
        params,
        SimulationPlan(warmup=plan.warmup, observation=plan.observation,
                       replications=half),
        seed=seed,
    )
    # The second half re-runs replication indices [half, 2*half) by
    # hand through the same spawn policy.
    root = StreamRegistry(seed)
    second_samples: List[float] = []
    from ..core.simulation import run_single

    for replication in range(half, replications):
        measures = run_single(params, plan, root.spawn(replication).seed)
        second_samples.append(measures["useful_work"])

    samples_match = merged.samples == first.samples + second_samples
    pooled_mean = sum(first.samples + second_samples) / replications
    mean_match = math.isclose(
        merged.useful_work_fraction.mean, pooled_mean, rel_tol=1e-12
    )
    return MetamorphicCheck(
        "merge-of-replications",
        samples_match and mean_match,
        (
            f"samples {'identical' if samples_match else 'DIVERGED'}, "
            f"pooled mean {'consistent' if mean_match else 'INCONSISTENT'} "
            f"({merged.useful_work_fraction.mean:.6f} vs {pooled_mean:.6f})"
        ),
    )


#: The small configuration the strategy-reduction checks simulate.
_ZOO_PARAMS = dict(n_processors=1024, processors_per_node=8)
_ZOO_PLAN = dict(warmup=3600.0, observation=40 * 3600.0, replications=4)


def check_incremental_reduction(seed: int = 0) -> MetamorphicCheck:
    """Incremental checkpointing at ``compression_ratio=1,
    full_checkpoint_period=1`` *is* the flat protocol.

    At the reduction point the derived write/read factors are exactly
    1.0 (IEEE-exact multiplications), so the per-replication samples
    must be bit-identical, not merely statistically close.
    """
    params = ModelParameters(**_ZOO_PARAMS)
    flat = simulate(params, SimulationPlan(**_ZOO_PLAN), seed=seed)
    reduced = simulate(
        params,
        SimulationPlan(
            **_ZOO_PLAN,
            strategy="incremental:compression_ratio=1.0,full_checkpoint_period=1",
        ),
        seed=seed,
    )
    passed = flat.samples == reduced.samples
    return MetamorphicCheck(
        "incremental-flat-reduction",
        passed,
        (
            "bit-identical samples at the reduction point"
            if passed
            else f"diverged: {flat.samples} vs {reduced.samples}"
        ),
    )


def check_adaptive_reduction(
    seed: int = 0, target_interval: float = 1800.0
) -> MetamorphicCheck:
    """Adaptive checkpointing with a frozen failure rate reduces to
    the flat protocol at the equivalent fixed interval.

    Freezing the rate at ``2 * delta / target^2`` makes the interval
    rule ``sqrt(2 * delta / rate)`` choose ``target`` (up to ulps);
    simulating flat at exactly the interval the strategy chose must
    then be bit-identical to simulating the strategy itself.
    """
    from ..strategies import resolve

    params = ModelParameters(**_ZOO_PARAMS)
    delta = params.mttq + params.checkpoint_dump_time
    rate = 2.0 * delta / (target_interval * target_interval)
    spec = f"adaptive:failure_rate={rate!r}"
    chosen = resolve(spec).interval_for(params)
    close = math.isclose(chosen, target_interval, rel_tol=1e-9)
    adaptive = simulate(
        params, SimulationPlan(**_ZOO_PLAN, strategy=spec), seed=seed
    )
    flat = simulate(
        params.with_overrides(checkpoint_interval=chosen),
        SimulationPlan(**_ZOO_PLAN),
        seed=seed,
    )
    identical = adaptive.samples == flat.samples
    return MetamorphicCheck(
        "adaptive-flat-reduction",
        close and identical,
        (
            f"chosen interval {chosen:.6f}s "
            f"{'~=' if close else 'FAR FROM'} target {target_interval:g}s; "
            f"samples {'bit-identical' if identical else 'DIVERGED'} "
            "vs flat at that interval"
        ),
    )


def check_compression_monotonicity() -> MetamorphicCheck:
    """The incremental strategy's effective checkpoint dump time is
    monotone non-decreasing in its compression ratio (a smaller delta
    — better compression — can only shrink the write), and exactly the
    flat dump time at ratio 1 with period 1.

    Pure configuration-level arithmetic over a dense grid — no
    simulation — so the check is instant.
    """
    from ..strategies import get_strategy

    params = ModelParameters(**_ZOO_PARAMS)
    flat_dump = params.checkpoint_dump_time
    violations: List[str] = []
    points = 0
    for period in (1, 2, 4, 8, 16):
        previous = None
        for percent in range(5, 101, 5):
            ratio = percent / 100.0
            configured = get_strategy(
                "incremental",
                compression_ratio=ratio,
                full_checkpoint_period=period,
            ).configure(params)
            dump = configured.checkpoint_dump_time
            points += 1
            if dump > flat_dump + 1e-12:
                violations.append(
                    f"c={ratio:g},P={period}: dump {dump:g} exceeds flat "
                    f"{flat_dump:g}"
                )
            if previous is not None and dump < previous - 1e-12:
                violations.append(
                    f"c={ratio:g},P={period}: dump decreased "
                    f"({previous:g} -> {dump:g}) as the ratio grew"
                )
            previous = dump
    exact_at_one = (
        get_strategy(
            "incremental", compression_ratio=1.0, full_checkpoint_period=1
        )
        .configure(params)
        .checkpoint_dump_time
        == flat_dump
    )
    if not exact_at_one:
        violations.append("dump at c=1,P=1 is not exactly the flat dump")
    return MetamorphicCheck(
        "compression-monotonicity",
        not violations,
        (
            f"dump time monotone over {points} (ratio, period) points, "
            "exact flat reduction at c=1,P=1"
            if not violations
            else "; ".join(violations[:3])
        ),
    )


def run_metamorphic_checks(seed: int = 0) -> List[MetamorphicCheck]:
    """Every engine-invariance check at one root seed."""
    return [
        check_seed_determinism(seed),
        check_time_rescaling(seed),
        check_place_relabeling(seed),
        check_merge_of_replications(seed),
        check_incremental_reduction(seed),
        check_adaptive_reduction(seed),
        check_compression_monotonicity(),
    ]
