"""Statistical validation and differential testing.

Three layers, one verdict:

* :mod:`repro.validate.gof` — goodness-of-fit of every sampler and
  failure process against its closed form (KS + chi-square);
* :mod:`repro.validate.metamorphic` — engine invariances of the SAN
  executive (seed determinism, time rescaling, place relabeling,
  merge of replications);
* :mod:`repro.validate.differential` — cross-backend agreement under
  a tolerance policy, with proper two-sample statistics and the n=1
  "never certify" rule, plus :mod:`repro.validate.baselines` for
  golden, drift-checked recordings.

:mod:`repro.validate.report` aggregates everything for the
``repro validate`` CLI subcommand and the CI tier-2 job.
"""

from .baselines import (
    BASELINE_PREFIX,
    BASELINE_SCHEMA_VERSION,
    BaselineError,
    PointCheck,
    baseline_path,
    check_baselines,
    record_baselines,
)
from .differential import (
    CaseResult,
    DifferentialCase,
    PairComparison,
    apply_perturbation,
    default_cases,
    filter_cases_by_backends,
    parse_perturbation,
    run_case,
    run_cases,
    split_backend_label,
    summarize_result,
)
from .gof import (
    GofResult,
    check_sampler,
    chi_square_check,
    default_distribution_suite,
    ks_check,
    run_distribution_checks,
    run_failure_process_checks,
)
from .metamorphic import (
    MetamorphicCheck,
    check_adaptive_reduction,
    check_compression_monotonicity,
    check_incremental_reduction,
    check_merge_of_replications,
    check_place_relabeling,
    check_seed_determinism,
    check_time_rescaling,
    run_metamorphic_checks,
)
from .report import ValidationReport, run_full_suite
from .stats import (
    AGREE,
    DISAGREE,
    INCONCLUSIVE,
    Comparison,
    SampleSummary,
    TolerancePolicy,
    compare_summaries,
    welch_statistic,
)

__all__ = [
    # stats
    "AGREE",
    "DISAGREE",
    "INCONCLUSIVE",
    "SampleSummary",
    "Comparison",
    "TolerancePolicy",
    "compare_summaries",
    "welch_statistic",
    # gof
    "GofResult",
    "ks_check",
    "chi_square_check",
    "check_sampler",
    "default_distribution_suite",
    "run_distribution_checks",
    "run_failure_process_checks",
    # metamorphic
    "MetamorphicCheck",
    "check_seed_determinism",
    "check_time_rescaling",
    "check_place_relabeling",
    "check_merge_of_replications",
    "check_incremental_reduction",
    "check_adaptive_reduction",
    "check_compression_monotonicity",
    "run_metamorphic_checks",
    # differential
    "DifferentialCase",
    "PairComparison",
    "CaseResult",
    "apply_perturbation",
    "parse_perturbation",
    "split_backend_label",
    "filter_cases_by_backends",
    "summarize_result",
    "run_case",
    "run_cases",
    "default_cases",
    # baselines
    "BASELINE_SCHEMA_VERSION",
    "BASELINE_PREFIX",
    "BaselineError",
    "PointCheck",
    "baseline_path",
    "record_baselines",
    "check_baselines",
    # report
    "ValidationReport",
    "run_full_suite",
]
