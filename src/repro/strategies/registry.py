"""The strategy registry: name -> :class:`CheckpointStrategy` class.

Mirrors :mod:`repro.backends.registry`, with one difference: because
strategies carry per-use parameters, the registry stores *classes*
and instantiates one per resolved spec, rather than storing ready
singletons. Everything downstream resolves spec strings through
:func:`resolve`::

    from repro.strategies import resolve
    strategy = resolve("incremental:compression_ratio=0.5")
    params = strategy.configure(params)
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import (
    CheckpointStrategy,
    StrategySpecError,
    UnknownStrategyError,
    parse_spec,
)

__all__ = [
    "register",
    "unregister",
    "get_strategy",
    "strategy_ids",
    "all_strategies",
    "resolve",
    "canonical_spec",
]

_REGISTRY: Dict[str, Type[CheckpointStrategy]] = {}


def register(cls: Type[CheckpointStrategy]) -> Type[CheckpointStrategy]:
    """Register a strategy class under its ``id``; returns it so the
    call works as a decorator.

    Re-registering an id is an error (it would silently redirect every
    plan naming it) — :func:`unregister` first.
    """
    if not cls.id:
        raise ValueError(f"strategy class {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"strategy id {cls.id!r} is already registered")
    _REGISTRY[cls.id] = cls
    return cls


def unregister(name: str) -> None:
    """Remove a registered strategy (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_strategy(name: str, **params) -> CheckpointStrategy:
    """Instantiate the strategy registered under ``name``.

    Raises :class:`~repro.strategies.base.UnknownStrategyError` naming
    the known ids (so a typo'd ``--strategy`` is self-explanatory) or
    :class:`~repro.strategies.base.StrategySpecError` when ``params``
    are not ones the strategy accepts.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown strategy {name!r}; registered strategies: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}"
        ) from None
    try:
        return cls(**params)
    except TypeError:
        accepted = ", ".join(cls.capabilities.parameters) or "(none)"
        raise StrategySpecError(
            f"strategy {name!r} does not accept parameters "
            f"{sorted(params)}; accepted parameters: {accepted}"
        ) from None


def strategy_ids() -> List[str]:
    """Sorted ids of every registered strategy."""
    return sorted(_REGISTRY)


def all_strategies() -> List[CheckpointStrategy]:
    """One default-parameterised instance per registered strategy,
    sorted by id (the ``repro strategies`` listing)."""
    return [get_strategy(name) for name in sorted(_REGISTRY)]


def resolve(spec: str) -> CheckpointStrategy:
    """Parse a spec string and instantiate the named strategy."""
    name, params = parse_spec(spec)
    return get_strategy(name, **params)


def canonical_spec(spec: str) -> str:
    """The canonical spelling of ``spec`` (validated, parameters
    sorted and value-normalised). Canonicalising is a projection:
    ``canonical_spec(canonical_spec(s)) == canonical_spec(s)``."""
    return resolve(spec).spec()
