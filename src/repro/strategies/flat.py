"""The ``flat`` strategy: the paper's protocol, extracted as the
reference.

Every checkpoint dumps the full per-node state and recovery reads one
full checkpoint back — exactly the behaviour the DSN 2005 model
describes and every other strategy is validated against. ``configure``
is the identity, which is what keeps pre-zoo figure archives
bit-identical: a flat plan never touches the model parameters at all.
"""

from __future__ import annotations

from typing import Dict

from ..core.parameters import ModelParameters
from .base import CheckpointStrategy, Number, StrategyCapabilities

__all__ = ["FlatCheckpointStrategy"]


class FlatCheckpointStrategy(CheckpointStrategy):
    """The paper's flat coordinated checkpoint protocol."""

    id = "flat"
    strategy_version = 1
    capabilities = StrategyCapabilities(
        description=(
            "the paper's coordinated checkpoint protocol: every "
            "checkpoint dumps the full per-node state at the fixed "
            "configured interval"
        ),
        parameters=(),
        reduction="is the reference protocol every variant reduces to",
    )

    def params_dict(self) -> Dict[str, Number]:
        return {}

    def configure(self, params: ModelParameters) -> ModelParameters:
        return params
