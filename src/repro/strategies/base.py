"""The checkpointing-strategy protocol: what a strategy is and how it
is spelled.

A *strategy* decides how checkpoints are taken — not how the model is
simulated. Each strategy **parameterises** the one SAN model builder
(via :meth:`CheckpointStrategy.configure`, which returns a derived
:class:`~repro.core.parameters.ModelParameters`) instead of forking
it, so every protocol variant runs through the same submodels, the
same seed policy, and the same validation machinery as the paper's
flat protocol.

Strategies are spelled as *spec strings* everywhere a plan or CLI
names one::

    flat
    incremental:compression_ratio=0.5,full_checkpoint_period=4
    adaptive:failure_rate=1e-4

i.e. ``name`` or ``name:key=value,...``. Spec strings are parsed by
:func:`parse_spec` and canonicalised (parameters sorted, numbers in
round-trip ``repr`` form) by the registry's ``canonical_spec``, so
two spellings of the same parameterisation always produce the same
cache digest.

The protocol mirrors :mod:`repro.backends`: a class with an ``id``, a
``strategy_version``, declared :class:`StrategyCapabilities`, and one
behavioural method. Errors subclass :class:`StrategyError`, itself a
:class:`ValueError`, so an invalid strategy surfaces exactly like any
other invalid plan field.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple, Union

from ..core.parameters import ModelParameters

__all__ = [
    "DEFAULT_STRATEGY",
    "StrategyError",
    "UnknownStrategyError",
    "StrategySpecError",
    "StrategyCapabilities",
    "CheckpointStrategy",
    "parse_spec",
    "format_spec",
]

#: The strategy every plan uses unless told otherwise: the paper's
#: flat coordinated checkpoint protocol.
DEFAULT_STRATEGY = "flat"

#: The value types a strategy parameter may take.
Number = Union[int, float]


class StrategyError(ValueError):
    """Base class for strategy problems. A :class:`ValueError` so that
    plan validation and CLI error mapping treat a bad strategy exactly
    like any other bad plan field (exit code 2)."""


class UnknownStrategyError(StrategyError, KeyError):
    """No strategy is registered under the requested name."""

    def __str__(self) -> str:  # KeyError quotes its repr; undo that.
        return ValueError.__str__(self)


class StrategySpecError(StrategyError):
    """A strategy spec string or parameter set is malformed."""


@dataclass(frozen=True)
class StrategyCapabilities:
    """What one strategy declares about itself.

    Attributes
    ----------
    description:
        One human-readable sentence for ``repro strategies``.
    parameters:
        Names of the spec parameters the strategy accepts.
    reduction:
        How (or whether) the strategy reduces to the flat reference —
        the oracle every variant's differential case is built on.
    """

    description: str
    parameters: Tuple[str, ...] = ()
    reduction: str = ""


class CheckpointStrategy:
    """Base class of every checkpointing strategy.

    Subclasses set ``id``, ``strategy_version`` and ``capabilities``
    as class attributes, accept their spec parameters as keyword
    arguments (validating them with :class:`StrategySpecError`), and
    implement :meth:`params_dict` and :meth:`configure`.

    ``configure`` must be **idempotent** — it sets absolute values on
    the returned parameters rather than compounding multiplicative
    edits — so applying a strategy twice (e.g. once in ``simulate``
    and once in ``simulate_batched``) is harmless.
    """

    id: str = ""
    strategy_version: int = 1
    capabilities: StrategyCapabilities = StrategyCapabilities(description="")

    def params_dict(self) -> Dict[str, Number]:
        """The configured spec parameters (the canonical value set)."""
        raise NotImplementedError

    def configure(self, params: ModelParameters) -> ModelParameters:
        """The model configuration this strategy actually runs."""
        raise NotImplementedError

    def spec(self) -> str:
        """The canonical spec string of this parameterisation."""
        return format_spec(self.id, self.params_dict())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.spec()!r}>"


def _parse_number(text: str, key: str, spec: str) -> Number:
    """A spec parameter value: an int when it reads as one, else a
    finite float."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        value = float(text)
    except ValueError:
        raise StrategySpecError(
            f"parameter {key!r} in strategy spec {spec!r} is not a "
            f"number: {text!r}"
        ) from None
    if not math.isfinite(value):
        raise StrategySpecError(
            f"parameter {key!r} in strategy spec {spec!r} must be "
            f"finite, got {text!r}"
        )
    return value


def parse_spec(spec: str) -> Tuple[str, Dict[str, Number]]:
    """Split ``"name"`` / ``"name:key=value,..."`` into its parts.

    Raises :class:`StrategySpecError` on anything malformed — empty
    names, missing ``=``, duplicate keys, non-numeric values — naming
    the offending fragment.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise StrategySpecError(
            f"a strategy spec must be a non-empty string, got {spec!r}"
        )
    name, sep, rest = spec.partition(":")
    name = name.strip()
    if not name:
        raise StrategySpecError(f"strategy spec {spec!r} has an empty name")
    params: Dict[str, Number] = {}
    if sep and not rest.strip():
        raise StrategySpecError(
            f"strategy spec {spec!r} has an empty parameter list; "
            f"drop the ':' or add key=value pairs"
        )
    if rest.strip():
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not eq or not key or not value:
                raise StrategySpecError(
                    f"malformed parameter {item.strip()!r} in strategy "
                    f"spec {spec!r}; expected key=value"
                )
            if key in params:
                raise StrategySpecError(
                    f"duplicate parameter {key!r} in strategy spec {spec!r}"
                )
            params[key] = _parse_number(value, key, spec)
    return name, params


def format_spec(name: str, params: Dict[str, Number]) -> str:
    """The canonical spelling of a parameterisation: parameters sorted
    by name, values in round-trip ``repr`` form (so parsing the result
    reproduces the exact same values)."""
    if not params:
        return name
    rendered = ",".join(
        f"{key}={params[key]!r}" for key in sorted(params)
    )
    return f"{name}:{rendered}"
