"""The ``adaptive`` strategy: the interval follows the failure rate.

Models adaptive interval selection in the style of Raghavendra &
Vadhiyar (arXiv:1711.00270): instead of the paper's fixed 30-minute
interval, the checkpoint interval is recomputed from the failure rate
and the current node count via the Young first-order optimum::

    interval = sqrt(2 * delta / rate)

where ``delta`` is the checkpoint cost the application observes (the
quiesce time plus the blocking dump time) and ``rate`` is the
system-wide failure rate. By default the rate is *observed from the
configuration itself* — ``params.compute_failure_rate``, i.e.
``n_nodes / mttf_node`` — so a sweep over processor counts re-derives
the interval at every point, exactly the shrink/grow adaptivity the
reference describes. Freezing the estimate with an explicit
``failure_rate`` spec parameter pins the interval to one value
everywhere; choosing ``failure_rate = 2 * delta / T**2`` reduces the
strategy to ``flat`` at fixed interval ``T``, the oracle the
``adaptive-vs-flat`` differential case is built on.

The interval is clamped to ``[min_interval, max_interval]`` — a real
deployment neither checkpoints every few seconds under a pessimistic
estimate nor lets the interval diverge on a nearly failure-free
machine.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..core.parameters import HOUR, ModelParameters
from .base import (
    CheckpointStrategy,
    Number,
    StrategyCapabilities,
    StrategySpecError,
)

__all__ = ["AdaptiveCheckpointStrategy"]

#: Clamp bounds of the recomputed interval.
DEFAULT_MIN_INTERVAL = 60.0
DEFAULT_MAX_INTERVAL = 4 * HOUR


class AdaptiveCheckpointStrategy(CheckpointStrategy):
    """Failure-rate-driven checkpoint intervals (Raghavendra &
    Vadhiyar)."""

    id = "adaptive"
    strategy_version = 1
    capabilities = StrategyCapabilities(
        description=(
            "recomputes the checkpoint interval per configuration from "
            "the observed (or frozen) failure rate and node count via "
            "the Young first-order optimum sqrt(2*delta/rate)"
        ),
        parameters=("failure_rate", "min_interval", "max_interval"),
        reduction=(
            "a frozen failure_rate = 2*delta/T**2 reduces to flat at "
            "the fixed interval T"
        ),
    )

    def __init__(
        self,
        failure_rate: Optional[float] = None,
        min_interval: float = DEFAULT_MIN_INTERVAL,
        max_interval: float = DEFAULT_MAX_INTERVAL,
    ) -> None:
        if failure_rate is not None:
            try:
                failure_rate = float(failure_rate)
            except (TypeError, ValueError):
                raise StrategySpecError(
                    f"failure_rate must be a number, got {failure_rate!r}"
                ) from None
            if not math.isfinite(failure_rate) or failure_rate <= 0:
                raise StrategySpecError(
                    f"failure_rate must be > 0, got {failure_rate!r}"
                )
        try:
            min_interval = float(min_interval)
            max_interval = float(max_interval)
        except (TypeError, ValueError):
            raise StrategySpecError(
                "min_interval and max_interval must be numbers"
            ) from None
        if min_interval <= 0:
            raise StrategySpecError(
                f"min_interval must be > 0, got {min_interval!r}"
            )
        if max_interval < min_interval:
            raise StrategySpecError(
                f"max_interval ({max_interval!r}) must be >= "
                f"min_interval ({min_interval!r})"
            )
        self.failure_rate = failure_rate
        self.min_interval = min_interval
        self.max_interval = max_interval

    def params_dict(self) -> Dict[str, Number]:
        params: Dict[str, Number] = {
            "min_interval": self.min_interval,
            "max_interval": self.max_interval,
        }
        if self.failure_rate is not None:
            params["failure_rate"] = self.failure_rate
        return params

    def interval_for(self, params: ModelParameters) -> float:
        """The interval this strategy selects for one configuration."""
        rate = (
            self.failure_rate
            if self.failure_rate is not None
            else params.compute_failure_rate
        )
        delta = params.mttq + params.checkpoint_dump_time
        interval = math.sqrt(2.0 * delta / rate)
        return min(max(interval, self.min_interval), self.max_interval)

    def configure(self, params: ModelParameters) -> ModelParameters:
        return params.with_overrides(
            checkpoint_interval=self.interval_for(params)
        )
