"""Checkpointing strategies: protocol variants over one SAN model.

The strategy zoo (ROADMAP item 3). Each strategy parameterises the
existing model builder rather than forking it, and plugs into the
same plan/cache/figure/validation plumbing as the flat protocol:

* ``flat`` — the paper's coordinated checkpoint protocol, extracted
  as the reference every variant is validated against;
* ``incremental`` — delta checkpoints with a compression-ratio /
  full-checkpoint-period parameterisation (Kohl et al.,
  arXiv:1708.08286);
* ``adaptive`` — the interval recomputed from the observed (or
  frozen) failure rate and node count (Raghavendra & Vadhiyar,
  arXiv:1711.00270).

Plans carry a strategy as a *spec string*
(``"incremental:compression_ratio=0.5,full_checkpoint_period=4"``),
validated and canonicalised on plan construction; ``repro
strategies`` lists the registry; ``repro validate`` holds every
variant against ``flat`` at its reduction point. docs/STRATEGIES.md
spells the contract a new variant must meet before it merges.
"""

from .base import (
    DEFAULT_STRATEGY,
    CheckpointStrategy,
    StrategyCapabilities,
    StrategyError,
    StrategySpecError,
    UnknownStrategyError,
    format_spec,
    parse_spec,
)
from .registry import (
    all_strategies,
    canonical_spec,
    get_strategy,
    register,
    resolve,
    strategy_ids,
    unregister,
)
from .adaptive import AdaptiveCheckpointStrategy
from .flat import FlatCheckpointStrategy
from .incremental import IncrementalCheckpointStrategy

__all__ = [
    "DEFAULT_STRATEGY",
    "CheckpointStrategy",
    "StrategyCapabilities",
    "StrategyError",
    "StrategySpecError",
    "UnknownStrategyError",
    "parse_spec",
    "format_spec",
    "register",
    "unregister",
    "get_strategy",
    "strategy_ids",
    "all_strategies",
    "resolve",
    "canonical_spec",
    "FlatCheckpointStrategy",
    "IncrementalCheckpointStrategy",
    "AdaptiveCheckpointStrategy",
]

register(FlatCheckpointStrategy)
register(IncrementalCheckpointStrategy)
register(AdaptiveCheckpointStrategy)
