"""The ``incremental`` strategy: delta checkpoints between periodic
full ones.

Models incremental/hierarchical checkpointing in the style of Kohl et
al. (arXiv:1708.08286): only every ``full_checkpoint_period``-th
checkpoint dumps the full per-node state; the ones in between write a
delta whose size is ``compression_ratio`` of a full dump. Recovery
must replay the last full checkpoint plus the incremental chain back
to it, so reads get *more* expensive as writes get cheaper — the
compression trade-off the figure-level comparison surfaces.

Both effects are steady-state rate scalings of the existing SAN
places, not new submodels, applied through the two parameter factors
the model builder already honours:

* **write factor** — the average checkpoint volume over one period of
  ``P`` checkpoints (one full + ``P - 1`` deltas of ratio ``c``)::

      write_factor = (1 + (P - 1) * c) / P

* **read factor** — recovery replays the full checkpoint plus the
  incremental chain; with failures uniform over the period the chain
  holds ``(P - 1) / 2`` deltas on average::

      read_factor = 1 + c * (P - 1) / 2

At the reduction point ``c = 1, P = 1`` both factors are **exactly**
``1.0`` in IEEE arithmetic — ``(1 + 0*1)/1`` and ``1 + 1*0/2`` — so
the strategy is bit-identical to ``flat`` there, which is what the
``incremental-vs-flat`` differential case pins.
"""

from __future__ import annotations

from typing import Dict

from ..core.parameters import ModelParameters
from .base import (
    CheckpointStrategy,
    Number,
    StrategyCapabilities,
    StrategySpecError,
)

__all__ = ["IncrementalCheckpointStrategy"]


class IncrementalCheckpointStrategy(CheckpointStrategy):
    """Delta checkpoints with periodic full dumps (Kohl et al.)."""

    id = "incremental"
    strategy_version = 1
    capabilities = StrategyCapabilities(
        description=(
            "delta checkpoints between periodic full dumps: writes "
            "shrink to the compression ratio, recovery replays the "
            "incremental chain back to the last full checkpoint"
        ),
        parameters=("compression_ratio", "full_checkpoint_period"),
        reduction=(
            "compression_ratio=1, full_checkpoint_period=1 is exactly "
            "the flat protocol (both factors are 1.0 bit-for-bit)"
        ),
    )

    def __init__(
        self,
        compression_ratio: float = 0.5,
        full_checkpoint_period: int = 4,
    ) -> None:
        try:
            ratio = float(compression_ratio)
        except (TypeError, ValueError):
            raise StrategySpecError(
                f"compression_ratio must be a number, got "
                f"{compression_ratio!r}"
            ) from None
        if not 0.0 < ratio <= 1.0:
            raise StrategySpecError(
                f"compression_ratio must be in (0, 1], got {ratio!r}"
            )
        period = full_checkpoint_period
        if isinstance(period, float):
            if not period.is_integer():
                raise StrategySpecError(
                    f"full_checkpoint_period must be an integer >= 1, "
                    f"got {full_checkpoint_period!r}"
                )
            period = int(period)
        if not isinstance(period, int) or isinstance(period, bool) or period < 1:
            raise StrategySpecError(
                f"full_checkpoint_period must be an integer >= 1, got "
                f"{full_checkpoint_period!r}"
            )
        self.compression_ratio = ratio
        self.full_checkpoint_period = period

    def params_dict(self) -> Dict[str, Number]:
        return {
            "compression_ratio": self.compression_ratio,
            "full_checkpoint_period": self.full_checkpoint_period,
        }

    @property
    def write_factor(self) -> float:
        """Average checkpoint volume per dump, as a fraction of a full
        dump: one full + ``P - 1`` deltas over a period of ``P``."""
        c = self.compression_ratio
        p = self.full_checkpoint_period
        return (1.0 + (p - 1) * c) / p

    @property
    def read_factor(self) -> float:
        """Average recovery read volume: the full checkpoint plus the
        expected ``(P - 1) / 2`` deltas of the incremental chain."""
        c = self.compression_ratio
        p = self.full_checkpoint_period
        return 1.0 + c * (p - 1) / 2.0

    def configure(self, params: ModelParameters) -> ModelParameters:
        return params.with_overrides(
            checkpoint_write_factor=self.write_factor,
            recovery_read_factor=self.read_factor,
        )
