"""Network primitives: latency messaging and bandwidth-shared links.

Two abstractions back the cluster simulator:

* :class:`Network` — delivers protocol messages with configurable
  latency; broadcasts model the hardware broadcast tree (one latency
  to every destination, as in BlueGene/L) and unicasts add the
  software transmission overhead.
* :class:`SharedLink` — a processor-sharing bandwidth pipe: concurrent
  transfers share the capacity equally (64 compute nodes dumping
  256 MB each through their group's 350 MB/s link all complete at the
  aggregate time, matching the SAN model's deterministic dump
  latency).

The link runs on *virtual time*: it tracks one scalar — the cumulative
per-transfer service ``S`` (bytes any always-active transfer would have
received) — advancing it by ``bandwidth / k * dt`` whenever the
composition changes. A transfer admitted at ``S0`` with ``n`` bytes
finishes exactly when ``S`` reaches ``S0 + n``, so start/cancel/finish
cost O(log k) (a heap keyed by finish-``S``, with cancelled entries
discarded lazily) instead of the former O(k) remaining-work rescan of
every in-flight transfer on every composition change.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from .engine import Engine, EventHandle

__all__ = ["Network", "SharedLink", "Transfer"]

#: Completion slack, expressed in *time*: a transfer whose residual
#: completion delay is below this fraction of the current clock is
#: treated as done. The progress arithmetic (rate * dt) can leave
#: floating-point remainders whose rescheduled delay underflows the
#: simulation clock (now + delay == now), so the slack sits a few
#: orders of magnitude above double-precision ulp while staying far
#: below any physically meaningful interval — it never rounds real
#: payload out of a small transfer (work conservation).
COMPLETION_EPSILON_REL = 1e-12


class Network:
    """Latency-only message fabric."""

    def __init__(
        self,
        engine: Engine,
        broadcast_latency: float,
        message_latency: float,
    ) -> None:
        if broadcast_latency < 0 or message_latency < 0:
            raise ValueError("latencies must be >= 0")
        self._engine = engine
        self.broadcast_latency = broadcast_latency
        self.message_latency = message_latency
        self.messages_sent = 0

    def send(self, receiver: Any, message: Any) -> None:
        """Unicast with the software transmission latency; the receiver
        gets ``receiver.receive(message)``."""
        self.messages_sent += 1
        self._engine.schedule(self.message_latency, receiver.receive, message)

    def broadcast(self, receivers: List[Any], message: Any) -> None:
        """Hardware-tree broadcast: one latency to all destinations."""
        self.messages_sent += len(receivers)
        for receiver in receivers:
            self._engine.schedule(self.broadcast_latency, receiver.receive, message)


class Transfer:
    """One in-flight transfer on a :class:`SharedLink`.

    ``virtual_start``/``virtual_finish`` are the link's virtual-time
    coordinates: the transfer is done when the link's cumulative
    per-transfer service reaches ``virtual_finish``.
    """

    __slots__ = (
        "nbytes",
        "on_complete",
        "cancelled",
        "done",
        "virtual_start",
        "virtual_finish",
        "_link",
        "_frozen_remaining",
    )

    def __init__(self, nbytes: float, on_complete: Callable[[], None]) -> None:
        self.nbytes = float(nbytes)
        self.on_complete = on_complete
        self.cancelled = False
        self.done = False
        self.virtual_start = 0.0
        self.virtual_finish = self.nbytes
        self._link: Optional["SharedLink"] = None
        self._frozen_remaining: Optional[float] = None

    @property
    def remaining(self) -> float:
        """Bytes still to deliver (frozen at cancellation time for a
        cancelled transfer, 0 once complete)."""
        if self.done:
            return 0.0
        if self._frozen_remaining is not None:
            return self._frozen_remaining
        link = self._link
        if link is None:
            return self.nbytes
        link._advance()
        return max(0.0, self.virtual_finish - link._virtual)

    def cancel(self) -> None:
        """Abandon the transfer (its callback never runs).

        Prefer :meth:`SharedLink.cancel`, which also releases this
        transfer's bandwidth share immediately; this method alone marks
        the transfer dead and lets the link notice lazily.
        """
        if not self.cancelled and not self.done:
            self._frozen_remaining = self.remaining
            self.cancelled = True


class SharedLink:
    """A processor-sharing link of fixed total bandwidth.

    ``k`` concurrent transfers each progress at ``bandwidth / k``; the
    link recomputes the next completion whenever a transfer starts,
    finishes or is cancelled. Used for the compute→I/O dump channels
    and the I/O→file-system channels.
    """

    def __init__(self, engine: Engine, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        self._engine = engine
        self.bandwidth = float(bandwidth)
        #: Cumulative per-transfer service, in bytes (virtual time).
        self._virtual = 0.0
        self._n_active = 0
        #: Finish-order heap of (virtual_finish, seq, transfer); entries
        #: for cancelled transfers are discarded lazily on pop.
        self._finish_heap: List[Tuple[float, int, Transfer]] = []
        self._sequence = 0
        self._last_update = engine.now
        self._completion_event: Optional[EventHandle] = None
        #: Bytes fully accounted for (completed + cancelled transfers).
        self._banked_bytes = 0.0

    # ------------------------------------------------------------------
    def transfer(self, nbytes: float, on_complete: Callable[[], None]) -> Transfer:
        """Start a transfer of ``nbytes``; ``on_complete`` runs when the
        last byte arrives."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self._advance()
        item = Transfer(nbytes, on_complete)
        item._link = self
        item.virtual_start = self._virtual
        item.virtual_finish = self._virtual + item.nbytes
        self._n_active += 1
        self._sequence += 1
        heapq.heappush(
            self._finish_heap, (item.virtual_finish, self._sequence, item)
        )
        self._reschedule()
        return item

    def cancel(self, item: Transfer) -> None:
        """Abort an in-flight transfer and release its bandwidth share
        immediately."""
        if item.cancelled or item.done:
            return
        self._advance()
        progressed = min(item.nbytes, max(0.0, self._virtual - item.virtual_start))
        item._frozen_remaining = item.nbytes - progressed
        item.cancelled = True
        self._banked_bytes += progressed
        self._n_active -= 1
        self._reschedule()

    def cancel_all(self) -> None:
        """Abort every in-flight transfer (e.g. the I/O nodes failed)."""
        self._advance()
        for _, _, item in self._finish_heap:
            if item.cancelled or item.done:
                continue
            progressed = min(
                item.nbytes, max(0.0, self._virtual - item.virtual_start)
            )
            item._frozen_remaining = item.nbytes - progressed
            item.cancelled = True
            self._banked_bytes += progressed
        self._n_active = 0
        del self._finish_heap[:]
        self._reschedule()

    @property
    def active_transfers(self) -> int:
        """Number of in-flight transfers."""
        return self._n_active

    @property
    def bytes_delivered(self) -> float:
        """Total bytes moved so far (completed, cancelled-partial, and
        live-partial progress)."""
        self._advance()
        live = sum(
            min(item.nbytes, max(0.0, self._virtual - item.virtual_start))
            for _, _, item in self._finish_heap
            if not item.cancelled and not item.done
        )
        return self._banked_bytes + live

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Advance virtual time to the present — O(1), no per-transfer
        work; every live transfer's progress is implied by ``_virtual``."""
        now = self._engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt > 0 and self._n_active:
            self._virtual += self.bandwidth * dt / self._n_active

    def _reschedule(self) -> None:
        """(Re)schedule the engine event for the next completion."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        heap = self._finish_heap
        while heap and (heap[0][2].cancelled or heap[0][2].done):
            heapq.heappop(heap)
        if not heap:
            return
        delay = (
            (heap[0][0] - self._virtual) * self._n_active / self.bandwidth
        )
        self._completion_event = self._engine.schedule(max(0.0, delay), self._complete)

    def _complete(self) -> None:
        """Finish every transfer whose bytes have drained."""
        self._completion_event = None
        self._advance()
        heap = self._finish_heap
        finished: List[Transfer] = []
        # Residual virtual-bytes whose rescheduled delay would vanish
        # under the current clock: delay = residual * k / bandwidth.
        byte_eps = (
            max(abs(self._engine.now), 1.0)
            * COMPLETION_EPSILON_REL
            * self.bandwidth
            / max(1, self._n_active)
        )
        threshold = self._virtual + byte_eps
        while heap:
            virtual_finish, _, item = heap[0]
            if item.cancelled or item.done:
                heapq.heappop(heap)
                continue
            if virtual_finish > threshold:
                break
            heapq.heappop(heap)
            finished.append(item)
        if not finished:
            # Guard against clock underflow: this event was scheduled
            # for the earliest finisher, so at least that transfer is
            # done up to floating-point noise. Finish it (and any peer
            # within the same noise band) despite the residual.
            forced_threshold: Optional[float] = None
            while heap:
                virtual_finish, _, item = heap[0]
                if item.cancelled or item.done:
                    heapq.heappop(heap)
                    continue
                if forced_threshold is None:
                    forced_threshold = virtual_finish + byte_eps
                elif virtual_finish > forced_threshold:
                    break
                heapq.heappop(heap)
                finished.append(item)
        for item in finished:
            item.done = True
            self._banked_bytes += item.nbytes
            self._n_active -= 1
        self._reschedule()
        for item in finished:
            item.on_complete()
