"""Network primitives: latency messaging and bandwidth-shared links.

Two abstractions back the cluster simulator:

* :class:`Network` — delivers protocol messages with configurable
  latency; broadcasts model the hardware broadcast tree (one latency
  to every destination, as in BlueGene/L) and unicasts add the
  software transmission overhead.
* :class:`SharedLink` — a processor-sharing bandwidth pipe: concurrent
  transfers share the capacity equally (64 compute nodes dumping
  256 MB each through their group's 350 MB/s link all complete at the
  aggregate time, matching the SAN model's deterministic dump
  latency).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .engine import Engine, EventHandle

__all__ = ["Network", "SharedLink", "Transfer"]

#: Residual bytes below this are floating-point noise, not payload:
#: transfer sizes are megabytes, and the progress arithmetic
#: (rate * dt) can leave O(1e-6)-byte remainders whose completion
#: delay underflows the simulation clock.
COMPLETION_EPSILON_BYTES = 1e-2


class Network:
    """Latency-only message fabric."""

    def __init__(
        self,
        engine: Engine,
        broadcast_latency: float,
        message_latency: float,
    ) -> None:
        if broadcast_latency < 0 or message_latency < 0:
            raise ValueError("latencies must be >= 0")
        self._engine = engine
        self.broadcast_latency = broadcast_latency
        self.message_latency = message_latency
        self.messages_sent = 0

    def send(self, receiver: Any, message: Any) -> None:
        """Unicast with the software transmission latency; the receiver
        gets ``receiver.receive(message)``."""
        self.messages_sent += 1
        self._engine.schedule(self.message_latency, receiver.receive, message)

    def broadcast(self, receivers: List[Any], message: Any) -> None:
        """Hardware-tree broadcast: one latency to all destinations."""
        self.messages_sent += len(receivers)
        for receiver in receivers:
            self._engine.schedule(self.broadcast_latency, receiver.receive, message)


class Transfer:
    """One in-flight transfer on a :class:`SharedLink`."""

    __slots__ = ("remaining", "on_complete", "cancelled")

    def __init__(self, nbytes: float, on_complete: Callable[[], None]) -> None:
        self.remaining = float(nbytes)
        self.on_complete = on_complete
        self.cancelled = False

    def cancel(self) -> None:
        """Abandon the transfer (its callback never runs)."""
        self.cancelled = True


class SharedLink:
    """A processor-sharing link of fixed total bandwidth.

    ``k`` concurrent transfers each progress at ``bandwidth / k``; the
    link recomputes the next completion whenever a transfer starts,
    finishes or is cancelled. Used for the compute→I/O dump channels
    and the I/O→file-system channels.
    """

    def __init__(self, engine: Engine, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        self._engine = engine
        self.bandwidth = float(bandwidth)
        self._active: List[Transfer] = []
        self._last_update = engine.now
        self._completion_event: Optional[EventHandle] = None
        self.bytes_delivered = 0.0

    # ------------------------------------------------------------------
    def transfer(self, nbytes: float, on_complete: Callable[[], None]) -> Transfer:
        """Start a transfer of ``nbytes``; ``on_complete`` runs when the
        last byte arrives."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self._advance()
        item = Transfer(nbytes, on_complete)
        self._active.append(item)
        self._reschedule()
        return item

    def cancel(self, item: Transfer) -> None:
        """Abort an in-flight transfer and release its bandwidth share
        immediately."""
        if item.cancelled:
            return
        self._advance()
        item.cancel()
        self._reschedule()

    def cancel_all(self) -> None:
        """Abort every in-flight transfer (e.g. the I/O nodes failed)."""
        self._advance()
        for item in self._active:
            item.cancel()
        self._reschedule()

    @property
    def active_transfers(self) -> int:
        """Number of in-flight transfers."""
        return len(self._active)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Progress every active transfer to the current time."""
        now = self._engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._active:
            return
        rate = self.bandwidth / len(self._active)
        for item in self._active:
            progressed = min(item.remaining, rate * dt)
            item.remaining -= progressed
            self.bytes_delivered += progressed

    def _reschedule(self) -> None:
        """Schedule the next completion for the smallest remainder."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        self._active = [t for t in self._active if not t.cancelled]
        if not self._active:
            return
        smallest = min(item.remaining for item in self._active)
        delay = smallest * len(self._active) / self.bandwidth
        self._completion_event = self._engine.schedule(delay, self._complete)

    def _complete(self) -> None:
        """Finish every transfer whose bytes have drained."""
        self._completion_event = None
        self._advance()
        eps = COMPLETION_EPSILON_BYTES
        live = [t for t in self._active if not t.cancelled]
        finished = [t for t in live if t.remaining <= eps]
        if not finished and live:
            # Guard against clock underflow: this event was scheduled
            # for the smallest remainder's completion, so at least that
            # transfer is done up to floating-point noise.
            smallest = min(t.remaining for t in live)
            finished = [t for t in live if t.remaining <= smallest + eps]
        self._active = [t for t in live if t not in finished]
        self._reschedule()
        for item in finished:
            item.on_complete()
