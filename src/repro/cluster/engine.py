"""A small discrete-event engine for the message-level cluster
simulator.

The SAN executive in :mod:`repro.san` is specialised for activity
networks; the cluster simulator instead wires ordinary Python objects
(nodes, links, file system) as event-driven state machines. This
engine provides the shared machinery: a time-ordered event queue with
cancellable handles.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Engine", "EventHandle"]


class EventHandle:
    """A scheduled callback that can be cancelled before it runs."""

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable, args: Tuple[Any, ...]) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True

    def __repr__(self) -> str:
        status = "cancelled" if self.cancelled else f"t={self.time:.6g}"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"EventHandle({name}, {status})"


class Engine:
    """Time-ordered event executor.

    Examples
    --------
    >>> engine = Engine()
    >>> seen = []
    >>> _ = engine.schedule(5.0, seen.append, "five")
    >>> _ = engine.schedule(1.0, seen.append, "one")
    >>> engine.run()
    >>> seen
    ['one', 'five']
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._sequence = 0
        self._stopped = False
        self.event_count = 0
        # Kernel counters (see repro.san.profiling for the SAN analogue):
        # heap traffic and the lazy-cancellation overhead it hides.
        self.heap_pushes = 0
        self.stale_pops = 0

    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        handle = EventHandle(self.now + delay, callback, args)
        self._sequence += 1
        heapq.heappush(self._heap, (handle.time, self._sequence, handle))
        self.heap_pushes += 1
        return handle

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self.schedule(time - self.now, callback, *args)

    def stop(self) -> None:
        """Stop :meth:`run` after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue drains, ``until`` is reached,
        or ``max_events`` events have run."""
        self._stopped = False
        processed = 0
        while self._heap and not self._stopped:
            time, _, handle = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            if handle.cancelled:
                self.stale_pops += 1
                continue
            self.now = time
            handle.callback(*handle.args)
            self.event_count += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                return
        if until is not None and not self._stopped:
            self.now = max(self.now, until)

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled placeholders)."""
        return len(self._heap)
