"""Per-node state machines of the cluster simulator.

Unlike the SAN model — which aggregates all compute nodes into one
unit — these classes run the paper's six-step protocol *per node*:
every compute node has its own exponential quiesce time, its own dump
transfer on its I/O group's shared link, and its own protocol
messages. The master collects 'ready'/'done' from every node and
enforces the timeout. This is the ground truth the aggregate model's
coordination law (max of n exponentials) is validated against.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from .protocol import Message, MessageType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import ClusterSimulator

__all__ = ["ComputeNodeState", "ComputeNode", "IONode", "MasterNode"]


class ComputeNodeState(enum.Enum):
    """Protocol state of one compute node."""

    EXECUTING = "executing"
    QUIESCING = "quiescing"
    READY = "ready"
    DUMPING = "dumping"
    WAITING_PROCEED = "waiting_proceed"
    DOWN = "down"


class ComputeNode:
    """One compute node: executes, quiesces, dumps, resumes."""

    def __init__(self, node_id: int, group: int, cluster: "ClusterSimulator") -> None:
        self.node_id = node_id
        self.group = group
        self.cluster = cluster
        self.state = ComputeNodeState.EXECUTING
        self.epoch = 0
        self._quiesce_event = None
        self._dump_transfer = None

    # ------------------------------------------------------------------
    def receive(self, message: Message) -> None:
        """Protocol message dispatch; stale-epoch messages are dropped."""
        if self.state is ComputeNodeState.DOWN:
            return
        kind = message.type
        if kind is MessageType.QUIESCE:
            self._on_quiesce(message.epoch)
        elif kind is MessageType.CHECKPOINT:
            self._on_checkpoint(message.epoch)
        elif kind is MessageType.PROCEED:
            self._on_proceed(message.epoch)
        elif kind is MessageType.ABORT:
            self._on_abort(message.epoch)

    def _on_quiesce(self, epoch: int) -> None:
        if self.state is not ComputeNodeState.EXECUTING:
            return
        self.epoch = epoch
        self.state = ComputeNodeState.QUIESCING
        delay = self.cluster.sample_quiesce_time()
        self._quiesce_event = self.cluster.engine.schedule(
            delay, self._quiesced, epoch
        )

    def _quiesced(self, epoch: int) -> None:
        self._quiesce_event = None
        if self.state is not ComputeNodeState.QUIESCING or self.epoch != epoch:
            return
        self.state = ComputeNodeState.READY
        self.cluster.network.send(
            self.cluster.master, Message(MessageType.READY, self.node_id, epoch)
        )

    def _on_checkpoint(self, epoch: int) -> None:
        if self.state is not ComputeNodeState.READY or self.epoch != epoch:
            return
        self.state = ComputeNodeState.DUMPING
        link = self.cluster.dump_link(self.group)
        self._dump_transfer = link.transfer(
            self.cluster.params.checkpoint_size_per_node,
            lambda: self._dump_complete(epoch),
        )

    def _dump_complete(self, epoch: int) -> None:
        self._dump_transfer = None
        if self.state is not ComputeNodeState.DUMPING or self.epoch != epoch:
            return
        self.state = ComputeNodeState.WAITING_PROCEED
        self.cluster.io_node(self.group).buffer_node_checkpoint(self.node_id, epoch)
        self.cluster.network.send(
            self.cluster.master, Message(MessageType.DONE, self.node_id, epoch)
        )

    def _on_proceed(self, epoch: int) -> None:
        if self.state is ComputeNodeState.WAITING_PROCEED and self.epoch == epoch:
            self.state = ComputeNodeState.EXECUTING

    def _on_abort(self, epoch: int) -> None:
        if self.epoch != epoch:
            return
        self.cancel_protocol()
        if self.state is not ComputeNodeState.DOWN:
            self.state = ComputeNodeState.EXECUTING

    # ------------------------------------------------------------------
    def cancel_protocol(self) -> None:
        """Drop any in-flight quiesce timer or dump transfer."""
        if self._quiesce_event is not None:
            self._quiesce_event.cancel()
            self._quiesce_event = None
        if self._dump_transfer is not None:
            self.cluster.dump_link(self.group).cancel(self._dump_transfer)
            self._dump_transfer = None

    def fail(self) -> None:
        """The node crashed (the cluster handles the global rollback)."""
        self.cancel_protocol()
        self.state = ComputeNodeState.DOWN

    def restore(self) -> None:
        """Recovery finished: resume execution."""
        self.state = ComputeNodeState.EXECUTING


class IONode:
    """One I/O node: buffers its group's checkpoints, writes them back
    to the file system in the background."""

    def __init__(self, io_id: int, cluster: "ClusterSimulator") -> None:
        self.io_id = io_id
        self.cluster = cluster
        self.buffered_epoch: Optional[int] = None
        self._pending_nodes = 0
        self._writeback_transfer = None
        self.down = False

    def buffer_node_checkpoint(self, node_id: int, epoch: int) -> None:
        """A compute node of this group finished its dump."""
        if self.down:
            return
        if self.buffered_epoch != epoch:
            self.buffered_epoch = epoch
            self._pending_nodes = 0
        self._pending_nodes += 1

    def start_writeback(self, epoch: int, nbytes: float) -> None:
        """Write the buffered group checkpoint to the file system."""
        if self.down or self.buffered_epoch != epoch:
            return
        link = self.cluster.fs_link(self.io_id)
        self._writeback_transfer = link.transfer(
            nbytes, lambda: self._writeback_complete(epoch)
        )

    def _writeback_complete(self, epoch: int) -> None:
        self._writeback_transfer = None
        if self.down:
            return
        self.cluster.on_stream_complete(epoch)

    def fail(self) -> None:
        """The I/O node crashed: its buffer and stream are lost."""
        self.down = True
        self.buffered_epoch = None
        self._pending_nodes = 0
        if self._writeback_transfer is not None:
            self.cluster.fs_link(self.io_id).cancel(self._writeback_transfer)
            self._writeback_transfer = None

    def restore(self) -> None:
        """The I/O nodes restarted (empty buffers)."""
        self.down = False

    @property
    def holds_buffered_checkpoint(self) -> bool:
        """True when a complete group checkpoint sits in memory."""
        return (
            not self.down
            and self.buffered_epoch is not None
            and self._pending_nodes >= self.cluster.group_size(self.io_id)
        )


class MasterNode:
    """The checkpoint coordinator.

    Periodically initiates the protocol, collects 'ready' and 'done'
    responses, enforces the timeout, and measures the coordination
    time (QUIESCE broadcast → last READY) for the order-statistic
    validation.
    """

    def __init__(self, cluster: "ClusterSimulator") -> None:
        self.cluster = cluster
        self.epoch = 0
        self._ready = 0
        self._done = 0
        self._phase: Optional[MessageType] = None
        self._timer = None
        self._interval_event = None
        self._quiesce_broadcast_at = 0.0
        self.coordination_times = []
        self.aborts = 0
        self.rounds = 0

    # ------------------------------------------------------------------
    def schedule_next_checkpoint(self) -> None:
        """Arm the checkpoint-interval timer."""
        self.cancel_interval()
        self._interval_event = self.cluster.engine.schedule(
            self.cluster.params.checkpoint_interval, self.start_checkpoint
        )

    def cancel_interval(self) -> None:
        """Disarm the interval timer (failure/rollback)."""
        if self._interval_event is not None:
            self._interval_event.cancel()
            self._interval_event = None

    def start_checkpoint(self) -> None:
        """Step (1): broadcast 'quiesce' and arm the timeout."""
        self._interval_event = None
        if not self.cluster.application_running:
            return
        self.epoch += 1
        self.rounds += 1
        self._ready = 0
        self._done = 0
        self._phase = MessageType.QUIESCE
        self._quiesce_broadcast_at = self.cluster.engine.now
        self.cluster.begin_checkpoint_round(self.epoch)
        self.cluster.network.broadcast(
            self.cluster.compute_nodes, Message(MessageType.QUIESCE, -1, self.epoch)
        )
        timeout = self.cluster.params.timeout
        if timeout is not None:
            self._timer = self.cluster.engine.schedule(timeout, self._timed_out)

    def receive(self, message: Message) -> None:
        """Collect 'ready' and 'done' responses."""
        if message.epoch != self.epoch:
            return
        if message.type is MessageType.READY and self._phase is MessageType.QUIESCE:
            self._ready += 1
            if self._ready >= len(self.cluster.compute_nodes):
                self._all_ready()
        elif message.type is MessageType.DONE and self._phase is MessageType.CHECKPOINT:
            self._done += 1
            if self._done >= len(self.cluster.compute_nodes):
                self._all_done()

    def _all_ready(self) -> None:
        """Step (3): every node is quiesced — broadcast 'checkpoint'."""
        self._disarm_timer()
        self.coordination_times.append(
            self.cluster.engine.now - self._quiesce_broadcast_at
        )
        self._phase = MessageType.CHECKPOINT
        self.cluster.network.broadcast(
            self.cluster.compute_nodes, Message(MessageType.CHECKPOINT, -1, self.epoch)
        )

    def _all_done(self) -> None:
        """Step (5): every node dumped — broadcast 'proceed'; the I/O
        nodes write back in the background."""
        self._phase = None
        self.cluster.network.broadcast(
            self.cluster.compute_nodes, Message(MessageType.PROCEED, -1, self.epoch)
        )
        self.cluster.complete_checkpoint_round(self.epoch)
        self.schedule_next_checkpoint()

    def _timed_out(self) -> None:
        """The timeout expired before coordination completed: abort."""
        self._timer = None
        if self._phase is not MessageType.QUIESCE:
            return
        self.aborts += 1
        self._phase = None
        self.cluster.network.broadcast(
            self.cluster.compute_nodes, Message(MessageType.ABORT, -1, self.epoch)
        )
        self.cluster.abort_checkpoint_round(self.epoch)
        self.schedule_next_checkpoint()

    def _disarm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def reset(self) -> None:
        """A failure reset the master to its initial state."""
        self._disarm_timer()
        self.cancel_interval()
        self._phase = None
        self._ready = 0
        self._done = 0
