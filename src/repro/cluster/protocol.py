"""Message types of the coordinated checkpoint protocol (Section 3.2).

The master drives the six-step protocol::

    (1) master --quiesce-->  all compute nodes
    (2) node   --ready---->  master           (once quiesced)
    (3) master --checkpoint-> all compute nodes
    (4) node   --done----->  master           (checkpoint dumped)
    (5) master --proceed--->  all compute nodes
    (6) nodes resume; I/O nodes write the checkpoint back in background

plus ``abort`` when the master times out waiting for 'ready'.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["MessageType", "Message"]


class MessageType(enum.Enum):
    """Protocol message kinds."""

    QUIESCE = "quiesce"
    READY = "ready"
    CHECKPOINT = "checkpoint"
    DONE = "done"
    PROCEED = "proceed"
    ABORT = "abort"


@dataclass(frozen=True)
class Message:
    """One protocol message.

    Attributes
    ----------
    type:
        The protocol step this message performs.
    sender:
        Node identifier of the sender (-1 for the master).
    epoch:
        The checkpoint round the message belongs to; nodes discard
        messages from stale rounds (e.g. a 'ready' that arrives after
        the master already aborted that round).
    """

    type: MessageType
    sender: int
    epoch: int

    def __str__(self) -> str:
        return f"{self.type.value}(from={self.sender}, epoch={self.epoch})"
