"""The parallel file system model.

Holds checkpoint *generations*. A new checkpoint generation opens when
the I/O nodes begin their background write-back and **commits** only
when every I/O node's stream finishes — until then the previous
generation remains the valid recovery point (Section 3.2: the current
checkpoint never overwrites the previous one until it completes and is
verified). An aborted write-back (I/O-node failure) discards the open
generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["CheckpointGeneration", "ParallelFileSystem"]


@dataclass
class CheckpointGeneration:
    """One checkpoint image being (or already) written to the FS.

    ``work_level`` is the amount of application work the image
    captures — what a recovery from it restores.
    """

    epoch: int
    work_level: float
    streams_pending: int

    @property
    def complete(self) -> bool:
        """All I/O-node streams for this generation have finished."""
        return self.streams_pending == 0


class ParallelFileSystem:
    """Checkpoint-generation bookkeeping for the cluster simulator."""

    def __init__(self) -> None:
        self._committed: Optional[CheckpointGeneration] = None
        self._open: Optional[CheckpointGeneration] = None
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    def begin_generation(self, epoch: int, work_level: float, streams: int) -> None:
        """The I/O nodes start writing a new checkpoint back.

        An already-open generation is superseded (counts as aborted) —
        this can only happen if a new checkpoint completes its dump
        while the previous write-back is still running.
        """
        if streams < 1:
            raise ValueError(f"streams must be >= 1, got {streams}")
        if self._open is not None:
            self.aborts += 1
        self._open = CheckpointGeneration(epoch, work_level, streams)

    def stream_complete(self, epoch: int) -> bool:
        """One I/O node finished its stream; returns True when the
        generation just committed."""
        if self._open is None or self._open.epoch != epoch:
            return False
        self._open.streams_pending -= 1
        if self._open.complete:
            self._committed = self._open
            self._open = None
            self.commits += 1
            return True
        return False

    def abort_open_generation(self) -> None:
        """Discard the open generation (I/O failure mid-write-back);
        the committed generation stays valid."""
        if self._open is not None:
            self._open = None
            self.aborts += 1

    # ------------------------------------------------------------------
    @property
    def committed_work_level(self) -> float:
        """Work level of the last durable checkpoint (0 = job start)."""
        return self._committed.work_level if self._committed else 0.0

    @property
    def committed_epoch(self) -> Optional[int]:
        """Epoch of the last durable checkpoint, if any."""
        return self._committed.epoch if self._committed else None

    @property
    def write_in_progress(self) -> bool:
        """True while a generation is open (being written back)."""
        return self._open is not None
