"""The message-level cluster simulator facade.

:class:`ClusterSimulator` wires per-node state machines
(:mod:`repro.cluster.nodes`), bandwidth-shared links, a parallel file
system and failure injection into a runnable system executing the
paper's actual protocol per node. It reports the same headline metric
as the SAN model (useful work fraction) plus the per-round
coordination-time samples used to validate the Section 5 order
statistic.

Scope: the cluster simulator covers the protocol and I/O paths,
including the BSP application's compute/I-O phase cycle (when
``compute_fraction < 1``): quiesce requests landing in an I/O phase
wait for the phase to finish (non-preemptible writes), completed I/O
phases queue background application-data writes on the file-system
links, and an I/O-node failure during such a write rolls the
application back. Any I/O-node failure during an active checkpoint
round aborts that round. Per-node simulation is practical up to a few
thousand nodes; the SAN model covers the hundreds-of-thousands regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.parameters import ModelParameters
from ..obs import metrics as obs_metrics
from ..obs.trace import TraceSink, default_sink
from ..san.rng import StreamRegistry
from .engine import Engine
from .filesystem import ParallelFileSystem
from .network import Network, SharedLink
from .nodes import ComputeNode, IONode, MasterNode

__all__ = ["ClusterSimulator", "ClusterResult"]


@dataclass
class ClusterResult:
    """Metrics of one cluster-simulator run."""

    duration: float
    useful_work: float
    coordination_times: List[float] = field(default_factory=list)
    rounds: int = 0
    aborts: int = 0
    commits: int = 0
    failures: int = 0
    io_failures: int = 0
    recoveries: int = 0
    app_data_losses: int = 0
    events: int = 0

    @property
    def useful_work_fraction(self) -> float:
        """Useful work per unit time."""
        return self.useful_work / self.duration if self.duration > 0 else 0.0

    @property
    def mean_coordination_time(self) -> float:
        """Average QUIESCE-broadcast → last-READY latency."""
        if not self.coordination_times:
            return 0.0
        return float(np.mean(self.coordination_times))


class ClusterSimulator:
    """Per-node simulation of the coordinated checkpoint protocol.

    Parameters
    ----------
    params:
        The system configuration (node counts are derived exactly as
        in the SAN model; keep ``n_nodes`` in the low thousands).
    seed:
        Root seed for the failure/quiesce random streams.
    sink:
        Observability sink receiving ``cluster.protocol`` lifecycle
        events (quiesce, proceed, abort, failure, recovery). Defaults
        to the process sink (:func:`repro.obs.trace.default_sink`) —
        a :class:`~repro.obs.trace.NullSink` unless a driver installed
        one. Lifecycle events are per-round/per-failure, never
        per-engine-event, so the hot path is untouched.
    """

    def __init__(
        self,
        params: ModelParameters,
        seed: int = 0,
        sink: Optional[TraceSink] = None,
    ) -> None:
        self.params = params
        self.sink = sink if sink is not None else default_sink()
        self.engine = Engine()
        self.network = Network(
            self.engine,
            broadcast_latency=params.broadcast_overhead,
            message_latency=params.software_overhead,
        )
        streams = StreamRegistry(seed)
        self._quiesce_rng = streams.get("cluster/quiesce")
        self._failure_rng = streams.get("cluster/failures")
        self._recovery_rng = streams.get("cluster/recovery")

        n_nodes = params.n_nodes
        n_io = params.n_io_nodes
        per_group = params.compute_nodes_per_io_node
        self.compute_nodes = [
            ComputeNode(i, i // per_group, self) for i in range(n_nodes)
        ]
        self.io_nodes = [IONode(i, self) for i in range(n_io)]
        self._dump_links = [
            SharedLink(self.engine, params.bandwidth_compute_to_io) for _ in range(n_io)
        ]
        self._fs_links = [
            SharedLink(self.engine, params.bandwidth_io_to_fs) for _ in range(n_io)
        ]
        self.master = MasterNode(self)
        self.filesystem = ParallelFileSystem()

        # Work accounting (global: the BSP application progresses as one
        # unit; accrual pauses from the QUIESCE broadcast to PROCEED).
        self._accruing = True
        self._last_accrual = 0.0
        self.useful_work = 0.0
        self._captured_work: Dict[int, float] = {}
        self._committed_work = 0.0
        self._recovering = False
        self._io_restarting = False
        self._round_active = False

        self.failure_count = 0
        self.io_failure_count = 0
        self.recovery_count = 0
        self.app_data_losses = 0

        # BSP application phase cycle (compute_fraction < 1): the
        # compute phase only progresses while the application accrues
        # work; the I/O phase is non-preemptible and runs to the end.
        self._app_phase = "compute"
        self._app_phase_event = None
        self._app_compute_remaining = params.app_compute_phase
        self._app_io_ends_at = 0.0
        self._app_writes_in_flight = 0

    # ------------------------------------------------------------------
    # Wiring helpers used by the node classes
    # ------------------------------------------------------------------
    def sample_quiesce_time(self) -> float:
        """One node's quiesce delay: its exponential quiesce time plus
        the wait for a non-preemptible application I/O phase to finish
        (Section 3.3 — a task mid-write cannot quiesce)."""
        extra = 0.0
        if self._app_enabled and self._app_phase == "io":
            extra = max(0.0, self._app_io_ends_at - self.engine.now)
        return extra + float(self._quiesce_rng.exponential(self.params.mttq))

    def dump_link(self, group: int) -> SharedLink:
        """The compute→I/O shared link of one group."""
        return self._dump_links[group]

    def fs_link(self, io_id: int) -> SharedLink:
        """The I/O→file-system link of one I/O node."""
        return self._fs_links[io_id]

    def io_node(self, group: int) -> IONode:
        """The I/O node serving a compute-node group."""
        return self.io_nodes[group]

    def group_size(self, io_id: int) -> int:
        """Compute nodes attached to one I/O node."""
        per_group = self.params.compute_nodes_per_io_node
        n_nodes = self.params.n_nodes
        return min(per_group, n_nodes - io_id * per_group)

    @property
    def application_running(self) -> bool:
        """True while the compute nodes are up (protocol phases
        included; recovery and reboot excluded)."""
        return not self._recovering

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------
    def _accrue(self) -> None:
        now = self.engine.now
        if self._accruing:
            self.useful_work += now - self._last_accrual
        self._last_accrual = now

    def _set_accruing(self, accruing: bool) -> None:
        self._accrue()
        self._accruing = accruing
        if not self._app_enabled:
            return
        if accruing:
            # The application resumes at a safe point in its compute
            # phase (matching the SAN model's app reset semantics).
            if self._app_phase != "io":
                self._start_app_compute_phase()
        else:
            self._cancel_app_compute_phase()

    # ------------------------------------------------------------------
    # BSP application phase cycle
    # ------------------------------------------------------------------
    @property
    def _app_enabled(self) -> bool:
        return self.params.compute_fraction < 1.0

    def _cancel_app_compute_phase(self) -> None:
        if self._app_phase_event is not None:
            self._app_phase_event.cancel()
            self._app_phase_event = None

    def _start_app_compute_phase(self) -> None:
        self._cancel_app_compute_phase()
        self._app_phase = "compute"
        self._app_phase_event = self.engine.schedule(
            self.params.app_compute_phase, self._app_compute_phase_end
        )

    def _app_compute_phase_end(self) -> None:
        self._app_phase_event = None
        self._app_phase = "io"
        self._app_io_ends_at = self.engine.now + self.params.app_io_phase
        # The I/O phase is non-preemptible: it runs to its end even if
        # a quiesce broadcast arrives meanwhile.
        self._app_io_event = self.engine.schedule(
            self.params.app_io_phase, self._app_io_phase_end
        )

    def _reset_app_phase(self) -> None:
        """A rollback discards the in-progress application phase."""
        self._cancel_app_compute_phase()
        io_event = getattr(self, "_app_io_event", None)
        if io_event is not None:
            io_event.cancel()
            self._app_io_event = None
        self._app_phase = "compute"
        self._app_writes_in_flight = 0

    def _app_io_phase_end(self) -> None:
        self._app_io_event = None
        self._app_phase = "compute"
        # Queue the background write of the phase's application data.
        nbytes = self.params.app_io_data_per_node
        for io_node in self.io_nodes:
            if io_node.down:
                continue
            self._app_writes_in_flight += 1
            self.fs_link(io_node.io_id).transfer(
                nbytes * self.group_size(io_node.io_id), self._app_write_complete
            )
        if self._accruing:
            self._start_app_compute_phase()

    def _app_write_complete(self) -> None:
        self._app_writes_in_flight = max(0, self._app_writes_in_flight - 1)

    @property
    def _buffered_work(self) -> Optional[float]:
        """Work level of a cluster-wide buffered checkpoint, if every
        I/O node holds the same complete epoch."""
        epochs = set()
        for node in self.io_nodes:
            if not node.holds_buffered_checkpoint:
                return None
            epochs.add(node.buffered_epoch)
        if len(epochs) != 1:
            return None
        return self._captured_work.get(epochs.pop())

    @property
    def _recovery_point(self) -> float:
        buffered = self._buffered_work
        if buffered is not None:
            return max(buffered, self._committed_work)
        return self._committed_work

    # ------------------------------------------------------------------
    # Checkpoint round lifecycle (called by the master)
    # ------------------------------------------------------------------
    def begin_checkpoint_round(self, epoch: int) -> None:
        """QUIESCE broadcast: application progress pauses; the captured
        work level of this round is the work accrued so far."""
        self._set_accruing(False)
        self._round_active = True
        self._captured_work[epoch] = self.useful_work
        self._prune_captures(keep=epoch)
        self.sink.emit(
            self.engine.now, "cluster.protocol", "quiesce",
            epoch=epoch, work=self.useful_work,
        )

    def complete_checkpoint_round(self, epoch: int) -> None:
        """All nodes dumped: resume execution and start the background
        write-back of every group's checkpoint."""
        self._round_active = False
        self._set_accruing(True)
        self.sink.emit(
            self.engine.now, "cluster.protocol", "proceed", epoch=epoch,
        )
        nbytes = self.params.checkpoint_size_per_node
        captured = self._captured_work.setdefault(epoch, self.useful_work)
        self.filesystem.begin_generation(
            epoch, captured, streams=len(self.io_nodes)
        )
        for io_node in self.io_nodes:
            io_node.start_writeback(epoch, nbytes * self.group_size(io_node.io_id))

    def abort_checkpoint_round(self, epoch: int) -> None:
        """The master timed out: abandon the round; the previous
        checkpoint stays valid."""
        self._round_active = False
        self._captured_work.pop(epoch, None)
        self._set_accruing(True)
        self.sink.emit(
            self.engine.now, "cluster.protocol", "abort", epoch=epoch,
        )

    def on_stream_complete(self, epoch: int) -> None:
        """One I/O node finished its write-back stream."""
        if self.filesystem.stream_complete(epoch):
            self._committed_work = max(
                self._committed_work, self.filesystem.committed_work_level
            )

    def _prune_captures(self, keep: int, window: int = 8) -> None:
        stale = [e for e in self._captured_work if e < keep - window]
        for e in stale:
            del self._captured_work[e]

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def _schedule_next_compute_failure(self) -> None:
        rate = self.params.compute_failure_rate
        delay = float(self._failure_rng.exponential(1.0 / rate))
        self.engine.schedule(delay, self._compute_failure)

    def _schedule_next_io_failure(self) -> None:
        rate = self.params.io_failure_rate
        delay = float(self._failure_rng.exponential(1.0 / rate))
        self.engine.schedule(delay, self._io_failure)

    def _compute_failure(self) -> None:
        self._schedule_next_compute_failure()
        self.failure_count += 1
        self.sink.emit(
            self.engine.now, "cluster.protocol", "compute_failure",
            during_recovery=self._recovering,
        )
        if self._recovering:
            # Failure during recovery: the attempt restarts.
            self._start_recovery()
            return
        # Roll the whole application back to the last checkpoint.
        self._roll_back()
        self._recovering = True
        self._start_recovery()

    def _roll_back(self) -> None:
        self._accrue()
        self.useful_work = min(self.useful_work, self._recovery_point)
        self._set_accruing(False)
        self._reset_app_phase()
        self.master.reset()
        self._round_active = False
        for node in self.compute_nodes:
            node.fail()

    def _start_recovery(self) -> None:
        # A failure during recovery restarts the attempt: drop the old
        # completion event before scheduling the new one.
        pending = getattr(self, "_recovery_event", None)
        if pending is not None:
            pending.cancel()
        stage1 = 0.0
        if self._buffered_work is None:
            stage1 = self.params.checkpoint_fs_read_time
        stage2 = float(self._recovery_rng.exponential(self.params.mttr))
        self._recovery_event = self.engine.schedule(
            stage1 + stage2, self._recovery_complete
        )

    def _recovery_complete(self) -> None:
        if not self._recovering:
            return
        self._recovering = False
        self.recovery_count += 1
        self.sink.emit(
            self.engine.now, "cluster.protocol", "recovery",
            work=self.useful_work,
        )
        for node in self.compute_nodes:
            node.restore()
        self._set_accruing(True)
        self.master.schedule_next_checkpoint()

    def _io_failure(self) -> None:
        self._schedule_next_io_failure()
        if self._io_restarting:
            return
        self.io_failure_count += 1
        self.sink.emit(
            self.engine.now, "cluster.protocol", "io_failure",
            round_active=self._round_active,
        )
        self._io_restarting = True
        self.filesystem.abort_open_generation()
        app_writes_lost = self._app_writes_in_flight > 0
        for node in self.io_nodes:
            node.fail()
        for link in self._fs_links:
            link.cancel_all()
        self._app_writes_in_flight = 0
        if app_writes_lost and not self._recovering:
            # Application data lost mid-write: the results are gone and
            # the whole computation rolls back (Section 4).
            self.app_data_losses += 1
            self._roll_back()
            self._recovering = True
            self._start_recovery()
        if self._round_active:
            # Nodes mid-dump lost their target buffers: the master
            # aborts the round (compute nodes are otherwise unaffected).
            for link in self._dump_links:
                link.cancel_all()
            self._abort_round_due_to_io()
        restart = float(self._recovery_rng.exponential(self.params.mttr_io))
        self.engine.schedule(restart, self._io_restart_complete)

    def _abort_round_due_to_io(self) -> None:
        from .protocol import Message, MessageType

        self.master.aborts += 1
        self.network.broadcast(
            self.compute_nodes, Message(MessageType.ABORT, -1, self.master.epoch)
        )
        self.master.reset()
        self.abort_checkpoint_round(self.master.epoch)
        if not self._recovering:
            self.master.schedule_next_checkpoint()

    def _io_restart_complete(self) -> None:
        self._io_restarting = False
        for node in self.io_nodes:
            node.restore()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, duration: float) -> ClusterResult:
        """Simulate for ``duration`` seconds and return the metrics."""
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        self.master.schedule_next_checkpoint()
        self._schedule_next_compute_failure()
        self._schedule_next_io_failure()
        if self._app_enabled:
            self._start_app_compute_phase()
        self.engine.run(until=duration)
        self._accrue()
        # Per-run (not per-event) metrics, mirroring the SAN executive.
        reg = obs_metrics.registry()
        reg.counter("cluster.runs").inc()
        reg.counter("cluster.events").inc(self.engine.event_count)
        reg.counter("cluster.rounds").inc(self.master.rounds)
        reg.counter("cluster.failures").inc(
            self.failure_count + self.io_failure_count
        )
        return ClusterResult(
            duration=duration,
            useful_work=self.useful_work,
            coordination_times=list(self.master.coordination_times),
            rounds=self.master.rounds,
            aborts=self.master.aborts,
            commits=self.filesystem.commits,
            failures=self.failure_count,
            io_failures=self.io_failure_count,
            recoveries=self.recovery_count,
            app_data_losses=self.app_data_losses,
            events=self.engine.event_count,
        )
