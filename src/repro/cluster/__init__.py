"""Message-level cluster simulator: the per-node ground truth.

Runs the paper's six-step coordinated checkpoint protocol over
individual compute nodes, I/O nodes, bandwidth-shared links and a
parallel file system::

    from repro.cluster import ClusterSimulator
    from repro.core import ModelParameters, HOUR

    params = ModelParameters(n_processors=1024, processors_per_node=8,
                             coordination_mode="max_of_exponentials")
    result = ClusterSimulator(params, seed=7).run(duration=50 * HOUR)
    print(result.useful_work_fraction, result.mean_coordination_time)
"""

from .engine import Engine, EventHandle
from .filesystem import CheckpointGeneration, ParallelFileSystem
from .network import Network, SharedLink, Transfer
from .nodes import ComputeNode, ComputeNodeState, IONode, MasterNode
from .protocol import Message, MessageType
from .simulator import ClusterResult, ClusterSimulator

__all__ = [
    "Engine",
    "EventHandle",
    "Network",
    "SharedLink",
    "Transfer",
    "ParallelFileSystem",
    "CheckpointGeneration",
    "ComputeNode",
    "ComputeNodeState",
    "IONode",
    "MasterNode",
    "Message",
    "MessageType",
    "ClusterResult",
    "ClusterSimulator",
]
