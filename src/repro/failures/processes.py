"""Failure arrival processes.

Generators of failure timestamps used by the cluster simulator's
injection, the synthetic-trace tooling and the statistical tests:

* :class:`PoissonProcess` — independent failures at a constant rate;
* :class:`ModulatedPoissonProcess` — the paper's generic
  correlated-failure semantics: the system alternates between an
  independent-rate phase and a correlated-rate phase (rate multiplied
  by ``1 + r``), the correlated phase occupying a long-run fraction
  ``alpha`` of time; the time-averaged rate is ``rate * (1 + alpha*r)``;
* :class:`BurstProcess` — error-propagation semantics: every base
  arrival opens, with probability ``p_e``, a burst window of elevated
  rate for a fixed duration.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional

import numpy as np

__all__ = ["PoissonProcess", "ModulatedPoissonProcess", "BurstProcess"]


class PoissonProcess:
    """Homogeneous Poisson arrivals of a given rate."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self._rng = rng

    def arrivals(self, horizon: float) -> List[float]:
        """All arrival times in ``[0, horizon)``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        times: List[float] = []
        t = 0.0
        while True:
            t += float(self._rng.exponential(1.0 / self.rate))
            if t >= horizon:
                return times
            times.append(t)

    def __iter__(self) -> Iterator[float]:
        t = 0.0
        while True:
            t += float(self._rng.exponential(1.0 / self.rate))
            yield t


class ModulatedPoissonProcess:
    """Two-phase Markov-modulated Poisson process.

    Phase Q (quiet) has rate ``base_rate``; phase C (correlated) has
    rate ``base_rate * (1 + r)``. Exponential phase durations are
    chosen so phase C occupies fraction ``alpha`` of time with mean
    window ``window``.
    """

    def __init__(
        self,
        base_rate: float,
        r: float,
        alpha: float,
        window: float,
        rng: np.random.Generator,
    ) -> None:
        if base_rate <= 0 or window <= 0:
            raise ValueError("base_rate and window must be > 0")
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if r < 0:
            raise ValueError(f"r must be >= 0, got {r}")
        self.base_rate = float(base_rate)
        self.r = float(r)
        self.alpha = float(alpha)
        self.window = float(window)
        self.quiet_mean = window * (1.0 - alpha) / alpha
        self._rng = rng

    @property
    def average_rate(self) -> float:
        """Time-averaged rate ``base_rate * (1 + alpha * r)``."""
        return self.base_rate * (1.0 + self.alpha * self.r)

    def arrivals(self, horizon: float) -> List[float]:
        """All arrival times in ``[0, horizon)``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        rng = self._rng
        times: List[float] = []
        t = 0.0
        correlated = False
        phase_end = float(rng.exponential(self.quiet_mean))
        while t < horizon:
            rate = self.base_rate * (1.0 + self.r) if correlated else self.base_rate
            candidate = t + float(rng.exponential(1.0 / rate))
            if candidate < phase_end:
                t = candidate
                if t < horizon:
                    times.append(t)
            else:
                t = phase_end
                correlated = not correlated
                mean = self.window if correlated else self.quiet_mean
                phase_end = t + float(rng.exponential(mean))
        return times


class BurstProcess:
    """Error-propagation bursts layered over a base Poisson process.

    Each base arrival opens a burst window of duration ``window`` with
    probability ``p_e``; inside an open window extra arrivals occur at
    ``base_rate * r``. Windows do not extend each other (matching the
    SAN model, where ``prop_corr_window`` is a single token).
    """

    def __init__(
        self,
        base_rate: float,
        r: float,
        p_e: float,
        window: float,
        rng: np.random.Generator,
    ) -> None:
        if base_rate <= 0 or window <= 0:
            raise ValueError("base_rate and window must be > 0")
        if not 0 <= p_e <= 1:
            raise ValueError(f"p_e must be in [0, 1], got {p_e}")
        if r < 0:
            raise ValueError(f"r must be >= 0, got {r}")
        self.base_rate = float(base_rate)
        self.r = float(r)
        self.p_e = float(p_e)
        self.window = float(window)
        self._rng = rng

    def arrivals(self, horizon: float) -> List[float]:
        """All arrival times (base + burst) in ``[0, horizon)``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        rng = self._rng
        base = PoissonProcess(self.base_rate, rng).arrivals(horizon)
        extras: List[float] = []
        burst_until = -math.inf
        for t in base:
            if t < burst_until:
                continue  # window already open; no re-trigger
            if rng.random() < self.p_e:
                burst_until = t + self.window
                burst_rate = self.base_rate * self.r
                if burst_rate > 0:
                    s = t
                    while True:
                        s += float(rng.exponential(1.0 / burst_rate))
                        if s >= min(burst_until, horizon):
                            break
                        extras.append(s)
        return sorted(base + extras)
