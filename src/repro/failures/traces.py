"""Synthetic failure traces and estimators.

The paper calibrates against field data (ASCI-Q per-node MTTF of one
year, Tang & Iyer's correlated-failure measurements). Lacking the raw
traces, this module generates synthetic equivalents with the published
rates and provides the estimators one would run on real traces —
useful both as test fixtures and to demonstrate how the model's
parameters would be fitted in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["FailureRecord", "generate_trace", "estimate_mtbf", "clustering_coefficient"]


@dataclass(frozen=True)
class FailureRecord:
    """One failure event in a trace."""

    time: float
    node_id: int
    correlated: bool = False


def generate_trace(
    n_nodes: int,
    mttf_node: float,
    horizon: float,
    seed: int = 0,
    p_e: float = 0.0,
    r: float = 0.0,
    window: float = 180.0,
) -> List[FailureRecord]:
    """A synthetic system-wide failure trace.

    Independent per-node failures at ``1/mttf_node`` each; with
    probability ``p_e`` a failure opens a burst window of duration
    ``window`` during which extra (correlated) failures arrive at
    ``r`` times the system rate.
    """
    if n_nodes < 1 or mttf_node <= 0 or horizon <= 0:
        raise ValueError("need n_nodes >= 1, mttf_node > 0, horizon > 0")
    rng = np.random.default_rng(seed)
    system_rate = n_nodes / mttf_node
    records: List[FailureRecord] = []
    t = 0.0
    burst_until = -1.0
    while True:
        in_burst = t < burst_until
        rate = system_rate * (1.0 + r) if in_burst else system_rate
        step = float(rng.exponential(1.0 / rate))
        if in_burst and t + step > burst_until:
            # The burst closes before the next elevated arrival;
            # continue from the window edge at the base rate.
            t = burst_until
            continue
        t += step
        if t >= horizon:
            return records
        correlated = t < burst_until
        records.append(
            FailureRecord(time=t, node_id=int(rng.integers(n_nodes)), correlated=correlated)
        )
        if not correlated and p_e > 0 and rng.random() < p_e:
            burst_until = t + window


def estimate_mtbf(trace: Sequence[FailureRecord]) -> float:
    """Mean inter-failure time of a trace (needs >= 2 records)."""
    if len(trace) < 2:
        raise ValueError("need at least two failures to estimate MTBF")
    times = np.array([record.time for record in trace])
    return float(np.mean(np.diff(times)))


def clustering_coefficient(trace: Sequence[FailureRecord], window: float) -> float:
    """Fraction of failures arriving within ``window`` of the previous
    one — a crude burstiness measure: ``1 - exp(-window/MTBF)`` for a
    Poisson trace, noticeably higher for correlated traces."""
    if len(trace) < 2:
        raise ValueError("need at least two failures")
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    times = np.array([record.time for record in trace])
    gaps = np.diff(times)
    return float(np.mean(gaps < window))
