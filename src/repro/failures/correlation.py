"""Correlated-failure window arithmetic.

Small, well-tested helpers shared by the SAN submodels' documentation,
the failure processes and the experiment configs: translating between
the paper's three parameterisations of correlation (conditional
probability ``p``, rate multiplier ``r``, coefficient ``alpha``) and
deriving the windows' long-run occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analytical.markov import conditional_probability, frate_factor, generic_system_rate

__all__ = ["CorrelationSpec", "window_occupancy"]


def window_occupancy(alpha: float) -> float:
    """Long-run fraction of time inside a generic correlated window —
    by construction equal to the coefficient ``alpha`` itself (the
    identity is kept as a named function so call sites read clearly)."""
    if not 0 <= alpha < 1:
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    return alpha


@dataclass(frozen=True)
class CorrelationSpec:
    """A correlated-failure configuration in the paper's vocabulary.

    Attributes
    ----------
    p_e:
        Probability a failure triggers error propagation.
    r:
        Failure-rate multiplier inside a window.
    alpha:
        Generic correlated-failure coefficient (0 = propagation only).
    window:
        Window duration in seconds.
    """

    p_e: float = 0.0
    r: float = 400.0
    alpha: float = 0.0
    window: float = 180.0

    def __post_init__(self) -> None:
        if not 0 <= self.p_e <= 1:
            raise ValueError(f"p_e must be in [0, 1], got {self.p_e}")
        if self.r < 0:
            raise ValueError(f"r must be >= 0, got {self.r}")
        if not 0 <= self.alpha < 1:
            raise ValueError(f"alpha must be in [0, 1), got {self.alpha}")
        if self.window <= 0:
            raise ValueError(f"window must be > 0, got {self.window}")

    def system_rate(self, n_nodes: int, lam: float) -> float:
        """Average system failure rate under the generic semantics:
        ``n lam (1 + alpha r)``."""
        return generic_system_rate(n_nodes, lam, self.alpha, self.r)

    def conditional_probability(self, mu: float, n_nodes: int, lam: float) -> float:
        """Conditional follow-on failure probability implied by ``r``
        (Section 6's inversion)."""
        return conditional_probability(self.r, mu, n_nodes, lam)

    @classmethod
    def from_conditional_probability(
        cls, p: float, mu: float, n_nodes: int, lam: float, window: float = 180.0
    ) -> "CorrelationSpec":
        """Build a spec whose ``r`` reproduces a target conditional
        probability ``p`` (the paper's calibration direction)."""
        r = frate_factor(p, mu, n_nodes, lam)
        if r < 0:
            raise ValueError(
                f"target p={p} implies a correlated rate below the independent "
                f"rate (r={r:.3g}); correlation is not identifiable here"
            )
        return cls(p_e=p, r=r, window=window)
