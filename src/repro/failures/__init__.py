"""Failure process machinery: arrival processes, synthetic traces and
correlation arithmetic."""

from .correlation import CorrelationSpec, window_occupancy
from .processes import BurstProcess, ModulatedPoissonProcess, PoissonProcess
from .spatial import generate_spatial_trace, group_concentration, spatial_locality
from .traces import FailureRecord, clustering_coefficient, estimate_mtbf, generate_trace

__all__ = [
    "PoissonProcess",
    "ModulatedPoissonProcess",
    "BurstProcess",
    "CorrelationSpec",
    "window_occupancy",
    "FailureRecord",
    "generate_trace",
    "estimate_mtbf",
    "clustering_coefficient",
    "generate_spatial_trace",
    "spatial_locality",
    "group_concentration",
]
