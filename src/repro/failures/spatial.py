"""Spatial failure correlation: trace tooling for the paper's future
work.

The paper models temporal correlation only, citing Zhang et al. [18]
for evidence that large clusters also exhibit *spatial* correlation —
failures clustering on neighbouring nodes (shared racks, power
domains, I/O groups). This module provides the measurement side of
that future work: synthetic traces with controllable spatial locality
and the estimator one would run on real logs to decide whether the
spatial dimension matters for a given machine.

The model itself deliberately stays temporal-only (as the paper's
does); these tools quantify what that leaves out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .traces import FailureRecord

__all__ = [
    "generate_spatial_trace",
    "spatial_locality",
    "group_concentration",
]


def generate_spatial_trace(
    n_nodes: int,
    mttf_node: float,
    horizon: float,
    seed: int = 0,
    locality: float = 0.0,
    neighborhood: int = 64,
    window: float = 180.0,
) -> List[FailureRecord]:
    """A failure trace with tunable spatial locality.

    Failures arrive at the system rate ``n_nodes / mttf_node``. With
    probability ``locality``, a failure within ``window`` of the
    previous one strikes the *same neighbourhood* (the previous
    victim's block of ``neighborhood`` nodes — e.g. an I/O group);
    otherwise the victim is uniform. ``locality = 0`` reduces to the
    spatially-independent trace.
    """
    if n_nodes < 1 or mttf_node <= 0 or horizon <= 0:
        raise ValueError("need n_nodes >= 1, mttf_node > 0, horizon > 0")
    if not 0.0 <= locality <= 1.0:
        raise ValueError(f"locality must be in [0, 1], got {locality}")
    if neighborhood < 1:
        raise ValueError(f"neighborhood must be >= 1, got {neighborhood}")
    rng = np.random.default_rng(seed)
    rate = n_nodes / mttf_node
    records: List[FailureRecord] = []
    t = 0.0
    last_time = -np.inf
    last_node = 0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= horizon:
            return records
        correlated = (t - last_time) < window and rng.random() < locality
        if correlated and records:
            block_start = (last_node // neighborhood) * neighborhood
            block_size = min(neighborhood, n_nodes - block_start)
            node = block_start + int(rng.integers(block_size))
        else:
            node = int(rng.integers(n_nodes))
        records.append(FailureRecord(time=t, node_id=node, correlated=correlated))
        last_time = t
        last_node = node


def spatial_locality(
    trace: Sequence[FailureRecord],
    neighborhood: int = 64,
    window: float = 180.0,
) -> float:
    """Fraction of close-in-time failure pairs that are also close in
    space (same ``neighborhood`` block).

    For a spatially independent trace this converges to
    ``neighborhood / n_nodes``; values well above that baseline
    indicate spatial correlation worth modeling.
    """
    if neighborhood < 1 or window <= 0:
        raise ValueError("need neighborhood >= 1 and window > 0")
    pairs = 0
    colocated = 0
    for previous, current in zip(trace, trace[1:]):
        if current.time - previous.time < window:
            pairs += 1
            if previous.node_id // neighborhood == current.node_id // neighborhood:
                colocated += 1
    if pairs == 0:
        return 0.0
    return colocated / pairs


def group_concentration(
    trace: Sequence[FailureRecord], n_nodes: int, neighborhood: int = 64
) -> float:
    """Normalised concentration of failures across neighbourhoods.

    Returns the ratio of the observed maximum per-group failure count
    to the uniform expectation; ~1 means evenly spread, >> 1 means a
    few groups absorb the failures (spatially concentrated damage).
    """
    if not trace:
        raise ValueError("empty trace")
    if n_nodes < 1 or neighborhood < 1:
        raise ValueError("need n_nodes >= 1 and neighborhood >= 1")
    n_groups = max(1, (n_nodes + neighborhood - 1) // neighborhood)
    counts = np.zeros(n_groups)
    for record in trace:
        counts[record.node_id // neighborhood] += 1
    expected = len(trace) / n_groups
    return float(counts.max() / expected)
