"""In-process executor: deterministic, one task at a time.

The simplest implementation of the
:class:`~repro.exec.base.Executor` protocol — and the reference for
the conformance suite: results come back in exactly submission order,
so a serial run is the canonical answer the pool and queue executors
must reproduce bit-for-bit.

A serial executor cannot preempt a hung evaluation (it *is* the
evaluating process), so ``point_timeout`` is enforced cooperatively:
the timeout is threaded into :func:`~repro.exec.task.execute_task` as
a deadline that tightens the simulation's per-replication wall-clock
budget. A runaway point then raises
:class:`~repro.san.errors.WallClockExceededError` from inside the
executive and flows through the normal retry path, instead of hanging
the sweep forever.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

from . import task as _task
from .base import ExecutorCapabilities
from .task import EvaluationTask, TaskResult

__all__ = ["SerialExecutor"]


class SerialExecutor:
    """Execute tasks in-process, in submission order."""

    capabilities = ExecutorCapabilities(
        name="serial",
        parallel=False,
        preemptive_timeout=False,
        persistent=False,
        deduplicates=False,
    )

    def __init__(
        self,
        point_timeout: Optional[float] = None,
        fault_plan: Optional[Any] = None,
        backend_resilience: Optional[Any] = None,
        run_task: Optional[Callable[..., TaskResult]] = None,
    ) -> None:
        """In-process executor.

        ``point_timeout`` becomes the cooperative per-task deadline
        (see the module docstring); ``fault_plan`` and
        ``backend_resilience`` are forwarded to every
        :func:`~repro.exec.task.execute_task` call. ``run_task``
        overrides the evaluation function itself (test seam); when
        ``None`` the executor resolves
        ``repro.exec.task.execute_task`` at call time, so
        monkeypatching the module function takes effect.
        """
        self.notes: List[str] = []
        self._ready: Deque[EvaluationTask] = deque()
        self._point_timeout = point_timeout
        self._fault_plan = fault_plan
        self._backend_resilience = backend_resilience
        self._run_task = run_task
        self._executed = 0

    def submit(self, task: EvaluationTask) -> None:
        """Append one task to the FIFO."""
        self._ready.append(task)

    @property
    def pending(self) -> int:
        """Tasks submitted but not yet executed."""
        return len(self._ready)

    def drain(self) -> Iterator[TaskResult]:
        """Execute and yield queued tasks until the FIFO is empty."""
        while self._ready:
            item = self._ready.popleft()
            runner = self._run_task
            if runner is None:
                runner = _task.execute_task
            self._executed += 1
            yield runner(
                item,
                self._fault_plan,
                self._backend_resilience,
                self._point_timeout,
            )

    def close(self) -> None:
        """Nothing to release; kept for protocol symmetry."""

    def stats(self) -> Dict[str, Any]:
        """Counters for the run manifest's ``execution`` section."""
        return {
            "executor": self.capabilities.name,
            "tasks_executed": self._executed,
        }
