"""Execution layer: serializable tasks, interchangeable executors.

This package is the seam between *what* to evaluate and *where* it
runs. The unit of work is a versioned, picklable
:class:`~repro.exec.task.EvaluationTask`; anything that can turn
tasks into :class:`~repro.exec.task.TaskResult` envelopes is an
:class:`~repro.exec.base.Executor`:

* :class:`~repro.exec.serial.SerialExecutor` — in-process, strict
  submission order, cooperative timeouts. The conformance reference.
* :class:`~repro.exec.pool.PoolExecutor` — ``multiprocessing.Pool``
  fan-out with preemptive hang detection and pool-death recovery.
* :class:`~repro.exec.queue.QueueExecutor` — file-backed persistent
  queue with priority ordering and cache-key deduplication, so
  concurrent figures sharing points evaluate each point once.

Retry policy, backoff, journaling and failure reporting live one
layer up, in :class:`~repro.experiments.resilience.SweepSupervisor`,
which drives any executor through the same protocol. See
``docs/EXECUTION.md`` for the task schema, the executor decision
tree and the queue layout.
"""

from .base import (
    EXECUTOR_IDS,
    Executor,
    ExecutorCapabilities,
    ExecutorError,
    make_executor,
)
from .pool import PoolExecutor, shutdown_pool
from .queue import (
    HEARTBEAT_DIVISOR,
    INFLIGHT_SWEEP_AGE_SECONDS,
    InflightLease,
    QueueExecutor,
)
from .serial import SerialExecutor
from .task import (
    TASK_SCHEMA_VERSION,
    EvaluationTask,
    Outcome,
    TaskError,
    TaskResult,
    execute_task,
    failure_payload,
)

__all__ = [
    "EXECUTOR_IDS",
    "Executor",
    "ExecutorCapabilities",
    "ExecutorError",
    "make_executor",
    "PoolExecutor",
    "shutdown_pool",
    "QueueExecutor",
    "INFLIGHT_SWEEP_AGE_SECONDS",
    "HEARTBEAT_DIVISOR",
    "InflightLease",
    "SerialExecutor",
    "TASK_SCHEMA_VERSION",
    "EvaluationTask",
    "Outcome",
    "TaskError",
    "TaskResult",
    "execute_task",
    "failure_payload",
]
