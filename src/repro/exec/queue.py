"""File-backed persistent work queue with dedup and priority order.

Layout under the queue directory::

    <queue_dir>/
      pending/   <priority:06d>-<counter:08d>-<cache_key>.json
      inflight/  same filename, moved here atomically while executing
      results/   <cache_key>.json   (ok TaskResult envelopes only)

Every file is written atomically (temp file + fsync + ``os.replace``,
the same discipline as the result cache and the journal) and a task
is *claimed* by an atomic rename from ``pending/`` to ``inflight/``,
so two drainers can share one queue directory without double-running
a task.

Deduplication: tasks are keyed by the canonical cache digest
(:meth:`~repro.exec.task.EvaluationTask.cache_key`). Submitting a key
that is already queued, already being waited on, or already answered
in the results store does not enqueue new work — the submission is
*coalesced*: it will be served from the single evaluation of that
key. Concurrent figures sharing points therefore evaluate each unique
point exactly once per queue.

Priority: lower ``task.priority`` values run first (then submission
order) — the lexicographic sort of the zero-padded filenames is the
schedule, so the order is stable across processes and restarts.

Crash recovery: a drainer killed mid-task leaves its claimed file in
``inflight/`` forever. On startup the janitor requeues in-flight
files older than :data:`INFLIGHT_SWEEP_AGE_SECONDS` back into
``pending/`` (mirror of the ResultCache ``.tmp`` janitor), publishing
the count as the ``queue.orphans_requeued`` metric.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import deque
from dataclasses import replace
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from ..obs import metrics as obs_metrics
from . import task as _task
from .base import ExecutorCapabilities
from .task import EvaluationTask, TaskError, TaskResult

__all__ = ["INFLIGHT_SWEEP_AGE_SECONDS", "QueueExecutor"]

#: Minimum age (seconds since last mtime) before a claimed task file
#: in ``inflight/`` is considered orphaned by a crashed drainer and
#: requeued.
INFLIGHT_SWEEP_AGE_SECONDS = 60.0


class QueueExecutor:
    """Persistent on-disk queue executor with coalescing."""

    capabilities = ExecutorCapabilities(
        name="queue",
        parallel=False,
        preemptive_timeout=False,
        persistent=True,
        deduplicates=True,
    )

    def __init__(
        self,
        queue_dir: str,
        point_timeout: Optional[float] = None,
        fault_plan: Optional[Any] = None,
        backend_resilience: Optional[Any] = None,
        run_task: Optional[Callable[..., TaskResult]] = None,
        orphan_age: float = INFLIGHT_SWEEP_AGE_SECONDS,
    ) -> None:
        """Queue executor rooted at ``queue_dir`` (created if missing).

        ``point_timeout`` is the cooperative per-task deadline (the
        queue executes in-process, like the serial executor);
        ``orphan_age`` overrides the janitor's age threshold (tests
        use 0 to requeue immediately). ``run_task`` is the test seam
        over :func:`~repro.exec.task.execute_task`.
        """
        self.queue_dir = queue_dir
        self.notes: List[str] = []
        self._pending_dir = os.path.join(queue_dir, "pending")
        self._inflight_dir = os.path.join(queue_dir, "inflight")
        self._results_dir = os.path.join(queue_dir, "results")
        for directory in (
            self._pending_dir, self._inflight_dir, self._results_dir
        ):
            os.makedirs(directory, exist_ok=True)
        self._point_timeout = point_timeout
        self._fault_plan = fault_plan
        self._backend_resilience = backend_resilience
        self._run_task = run_task
        self._orphan_age = orphan_age
        self._counter = 0
        self._waiters: Dict[str, List[EvaluationTask]] = {}
        self._served: Deque[Tuple[EvaluationTask, TaskResult]] = deque()
        self._executed = 0
        self._coalesced = 0
        self._orphans_requeued = 0
        self._depth_high_water = 0
        self._sweep_orphaned_inflight()

    # ------------------------------------------------------------------
    # Janitor
    # ------------------------------------------------------------------
    def _sweep_orphaned_inflight(self) -> None:
        """Requeue task files abandoned by a crashed drainer."""
        requeued = 0
        now = time.time()
        for name in sorted(os.listdir(self._inflight_dir)):
            path = os.path.join(self._inflight_dir, name)
            try:
                age = now - os.path.getmtime(path)
                if age >= self._orphan_age:
                    os.replace(path, os.path.join(self._pending_dir, name))
                    requeued += 1
            except OSError:
                continue  # raced with another janitor or drainer: fine
        if requeued:
            self._orphans_requeued = requeued
            obs_metrics.registry().counter("queue.orphans_requeued").inc(
                requeued
            )
            self.notes.append(
                f"work queue janitor: requeued {requeued} orphaned "
                f"in-flight task(s) in {self.queue_dir}"
            )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, task: EvaluationTask) -> None:
        """Enqueue one task, coalescing on its cache key.

        A key already being waited on, already queued on disk, or
        already answered in the results store is not enqueued again;
        the submission is counted as coalesced and served from the
        single evaluation of that key.
        """
        key = task.cache_key()
        waiters = self._waiters.get(key)
        if waiters is not None:
            waiters.append(task)
            self._coalesced += 1
            return
        stored = self._load_stored(key)
        if stored is not None:
            self._served.append((task, stored))
            self._coalesced += 1
            return
        self._waiters[key] = [task]
        if self._queued_files(key):
            # Persisted by an earlier (possibly crashed) submitter:
            # ride on that file instead of enqueueing a duplicate.
            self._coalesced += 1
        else:
            self._write_pending(task, key)
        depth = len(os.listdir(self._pending_dir)) + len(
            os.listdir(self._inflight_dir)
        )
        self._depth_high_water = max(self._depth_high_water, depth)

    @property
    def pending(self) -> int:
        """Submissions not yet yielded by :meth:`drain`."""
        return sum(len(w) for w in self._waiters.values()) + len(self._served)

    # ------------------------------------------------------------------
    # File plumbing
    # ------------------------------------------------------------------
    def _queued_files(self, key: str) -> List[str]:
        suffix = f"-{key}.json"
        found = []
        for directory in (self._pending_dir, self._inflight_dir):
            for name in os.listdir(directory):
                if name.endswith(suffix):
                    found.append(os.path.join(directory, name))
        return found

    def _write_pending(self, task: EvaluationTask, key: str) -> None:
        priority = max(0, task.priority)
        name = f"{priority:06d}-{self._counter:08d}-{key}.json"
        self._counter += 1
        self._atomic_write(
            os.path.join(self._pending_dir, name), task.to_json_dict()
        )

    @staticmethod
    def _atomic_write(path: str, payload: Dict[str, Any]) -> None:
        directory = os.path.dirname(path)
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".queue-", suffix=".json.tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def _load_stored(self, key: str) -> Optional[TaskResult]:
        path = os.path.join(self._results_dir, f"{key}.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return TaskResult.from_json_dict(payload)
        except (OSError, ValueError, TaskError):
            return None  # absent or unreadable: evaluate fresh

    def _store_result(self, key: str, result: TaskResult) -> None:
        try:
            self._atomic_write(
                os.path.join(self._results_dir, f"{key}.json"),
                result.to_json_dict(),
            )
        except OSError:
            pass  # a full or read-only store must not fail the task

    def _claim_next(self) -> Optional[str]:
        """Atomically move the first pending file to ``inflight/``."""
        for name in sorted(os.listdir(self._pending_dir)):
            if not name.endswith(".json"):
                continue
            source = os.path.join(self._pending_dir, name)
            target = os.path.join(self._inflight_dir, name)
            try:
                os.replace(source, target)
            except OSError:
                continue  # another drainer claimed it first
            return target
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run(self, task: EvaluationTask) -> TaskResult:
        runner = self._run_task
        if runner is None:
            runner = _task.execute_task
        self._executed += 1
        return runner(
            task,
            self._fault_plan,
            self._backend_resilience,
            self._point_timeout,
        )

    def _dispatch(self, key: str, result: TaskResult) -> List[TaskResult]:
        """Stamp one evaluation's result onto every waiting submission."""
        waiters = self._waiters.pop(key, [])
        stamped = []
        for position, waiter in enumerate(waiters):
            stamped.append(
                replace(
                    result,
                    index=waiter.index,
                    series=waiter.series,
                    x=waiter.x,
                    attempt=waiter.attempt,
                    coalesced=position > 0,
                )
            )
        return stamped

    def drain(self) -> Iterator[TaskResult]:
        """Execute queued tasks in priority order; yield results for
        every local submission (coalesced ones included) until none
        remain waiting. Queued tasks belonging to other submitters are
        executed and stored but not yielded."""
        while self._waiters or self._served:
            while self._served:
                waiter, stored = self._served.popleft()
                yield replace(
                    stored,
                    index=waiter.index,
                    series=waiter.series,
                    x=waiter.x,
                    attempt=waiter.attempt,
                    coalesced=True,
                )
            if not self._waiters:
                continue
            claimed = self._claim_next()
            if claimed is None:
                # Waiters remain but no file is claimable (lost to a
                # crash before the janitor threshold, or claimed by a
                # foreign drainer that died): evaluate from the
                # in-memory submission so the sweep always completes.
                key = next(iter(self._waiters))
                result = self._run(self._waiters[key][0])
                if result.ok:
                    self._store_result(key, result)
                for stamped in self._dispatch(key, result):
                    yield stamped
                continue
            try:
                with open(claimed, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                task = EvaluationTask.from_json_dict(payload)
            except (OSError, ValueError, TaskError) as exc:
                self.notes.append(
                    f"work queue: dropped unreadable task file "
                    f"{os.path.basename(claimed)} ({exc})"
                )
                try:
                    os.unlink(claimed)
                except OSError:
                    pass
                continue
            key = task.cache_key()
            result = self._run(task)
            if result.ok:
                self._store_result(key, result)
            try:
                os.unlink(claimed)
            except OSError:
                pass
            for stamped in self._dispatch(key, result):
                yield stamped

    def close(self) -> None:
        """Nothing to release — the queue directory *is* the state."""

    def stats(self) -> Dict[str, Any]:
        """Counters for the run manifest's ``execution`` section."""
        return {
            "executor": self.capabilities.name,
            "tasks_executed": self._executed,
            "coalesced": self._coalesced,
            "queue_depth_high_water": self._depth_high_water,
            "orphans_requeued": self._orphans_requeued,
        }
