"""File-backed persistent work queue with dedup and priority order.

Layout under the queue directory::

    <queue_dir>/
      pending/   <priority:06d>-<counter:08d>-<cache_key>.json
      inflight/  same filename, moved here atomically while executing
      results/   <cache_key>.json   (ok TaskResult envelopes only)

Every file is written atomically (temp file + fsync + ``os.replace``,
the same discipline as the result cache and the journal) and a task
is *claimed* by an atomic rename from ``pending/`` to ``inflight/``,
so two drainers can share one queue directory without double-running
a task.

Deduplication: tasks are keyed by the canonical cache digest
(:meth:`~repro.exec.task.EvaluationTask.cache_key`). Submitting a key
that is already queued, already being waited on, or already answered
in the results store does not enqueue new work — the submission is
*coalesced*: it will be served from the single evaluation of that
key. Concurrent figures sharing points therefore evaluate each unique
point exactly once per queue.

Priority: lower ``task.priority`` values run first (then submission
order) — the lexicographic sort of the zero-padded filenames is the
schedule. The FIFO tie-break counter is *persistent*: the next value
is derived from the highest counter visible in ``pending/`` +
``inflight/`` and a ``counter`` file next to them (updated
atomically), so submission order survives restarts and holds across
processes sharing one queue directory.

Crash recovery is lease-based: while a drainer executes a claimed
task it *heartbeats* the in-flight file's mtime (a touch every
``orphan_age / HEARTBEAT_DIVISOR`` seconds from the executing
process), so the file's mtime is a live lease, not a creation stamp.
The janitor requeues in-flight files whose lease actually expired —
older than :data:`INFLIGHT_SWEEP_AGE_SECONDS` since the *last
heartbeat* — back into ``pending/``, publishing the count as the
``queue.orphans_requeued`` metric. A slow task with a live heartbeat
is never requeued; a claim whose drainer crashed stops beating and
is.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from collections import deque
from dataclasses import replace
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from ..obs import metrics as obs_metrics
from . import task as _task
from .base import ExecutorCapabilities
from .task import EvaluationTask, TaskError, TaskResult

__all__ = [
    "INFLIGHT_SWEEP_AGE_SECONDS",
    "HEARTBEAT_DIVISOR",
    "InflightLease",
    "QueueExecutor",
    "atomic_write_json",
    "claim_next_pending",
    "next_counter",
    "pending_name",
    "sweep_orphaned_inflight",
]

#: Minimum age (seconds since the last heartbeat touch) before a
#: claimed task file in ``inflight/`` is considered orphaned by a
#: crashed drainer and requeued.
INFLIGHT_SWEEP_AGE_SECONDS = 60.0

#: A live drainer touches its claimed file every
#: ``orphan_age / HEARTBEAT_DIVISOR`` seconds, so a healthy lease is
#: always several beats fresher than the janitor's threshold.
HEARTBEAT_DIVISOR = 3.0


# ----------------------------------------------------------------------
# Shared file plumbing (used by QueueExecutor and repro.service.worker)
# ----------------------------------------------------------------------
def atomic_write_json(path: str, payload: Any) -> None:
    """Write ``payload`` as JSON via temp file + fsync + ``os.replace``
    (the same crash discipline as the result cache and the journal)."""
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".queue-", suffix=".json.tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def pending_name(priority: int, counter: int, key: str) -> str:
    """The schedule-bearing filename of one queued task."""
    return f"{max(0, priority):06d}-{counter:08d}-{key}.json"


def _scan_max_counter(directories: Tuple[str, ...]) -> int:
    """Highest FIFO counter embedded in any queued filename (-1 when
    none are queued)."""
    highest = -1
    for directory in directories:
        try:
            names = os.listdir(directory)
        except OSError:
            continue
        for name in names:
            parts = name.split("-", 2)
            if len(parts) != 3 or not name.endswith(".json"):
                continue
            try:
                highest = max(highest, int(parts[1]))
            except ValueError:
                continue
    return highest


def next_counter(queue_dir: str, pending_dir: str, inflight_dir: str) -> int:
    """Allocate the next FIFO tie-break counter for ``queue_dir``.

    The value is ``max(persisted counter file, highest counter still
    queued + 1)`` — never a per-process zero — so submission order
    survives restarts and holds across processes sharing the
    directory. The ``counter`` file is advanced atomically; a lost
    update between two racing submitters is caught by the directory
    scan as long as the earlier submission is still queued, which is
    the only window in which relative order matters.
    """
    counter_path = os.path.join(queue_dir, "counter")
    persisted = 0
    try:
        with open(counter_path, "r", encoding="utf-8") as handle:
            persisted = int(handle.read().strip() or 0)
    except (OSError, ValueError):
        persisted = 0
    value = max(persisted, _scan_max_counter((pending_dir, inflight_dir)) + 1)
    try:
        atomic_write_json(counter_path, value + 1)
    except OSError:
        pass  # a read-only queue still orders by the directory scan
    return value


def claim_next_pending(pending_dir: str, inflight_dir: str) -> Optional[str]:
    """Atomically move the first pending file to ``inflight/``.

    Returns the claimed in-flight path, or ``None`` when nothing is
    claimable. Losing a rename race to another drainer just moves on
    to the next file — two drainers can never claim the same task.
    """
    try:
        names = sorted(os.listdir(pending_dir))
    except OSError:
        return None
    for name in names:
        if not name.endswith(".json"):
            continue
        source = os.path.join(pending_dir, name)
        target = os.path.join(inflight_dir, name)
        try:
            os.replace(source, target)
        except OSError:
            continue  # another drainer claimed it first
        return target
    return None


def sweep_orphaned_inflight(
    pending_dir: str,
    inflight_dir: str,
    orphan_age: float,
    clock: Callable[[], float] = time.time,
) -> int:
    """Requeue in-flight files whose lease expired; returns the count.

    The mtime of a claimed file is a *lease*: live drainers heartbeat
    it (see :class:`InflightLease`), so only a claim whose drainer
    stopped beating for ``orphan_age`` seconds is requeued. A slow
    task under a live heartbeat is never double-run.
    """
    requeued = 0
    now = clock()
    try:
        names = sorted(os.listdir(inflight_dir))
    except OSError:
        return 0
    for name in names:
        path = os.path.join(inflight_dir, name)
        try:
            age = now - os.path.getmtime(path)
            if age >= orphan_age:
                os.replace(path, os.path.join(pending_dir, name))
                requeued += 1
        except OSError:
            continue  # raced with another janitor or drainer: fine
    if requeued:
        obs_metrics.registry().counter("queue.orphans_requeued").inc(requeued)
    return requeued


class InflightLease:
    """Heartbeat a claimed in-flight file while its task executes.

    A context manager: entering starts a daemon thread touching the
    file's mtime every ``orphan_age / HEARTBEAT_DIVISOR`` seconds (no
    thread when ``orphan_age <= 0`` — the immediate-requeue escape
    hatch used by tests has no lease to keep alive); exiting stops it.
    ``beat()`` is also callable directly for deterministic tests. A
    touch on a file that vanished (the task finished and was unlinked,
    or a rogue janitor moved it) is silently ignored.
    """

    def __init__(
        self,
        path: str,
        orphan_age: float,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = path
        self.interval = (
            orphan_age / HEARTBEAT_DIVISOR if orphan_age > 0 else 0.0
        )
        self._clock = clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def beat(self) -> None:
        """Touch the claimed file's mtime (one heartbeat)."""
        now = self._clock()
        try:
            os.utime(self.path, (now, now))
        except OSError:
            pass

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat()

    def __enter__(self) -> "InflightLease":
        if self.interval > 0:
            self._thread = threading.Thread(
                target=self._loop, name="inflight-lease", daemon=True
            )
            self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)
            self._thread = None


class QueueExecutor:
    """Persistent on-disk queue executor with coalescing."""

    capabilities = ExecutorCapabilities(
        name="queue",
        parallel=False,
        preemptive_timeout=False,
        persistent=True,
        deduplicates=True,
    )

    def __init__(
        self,
        queue_dir: str,
        point_timeout: Optional[float] = None,
        fault_plan: Optional[Any] = None,
        backend_resilience: Optional[Any] = None,
        run_task: Optional[Callable[..., TaskResult]] = None,
        orphan_age: float = INFLIGHT_SWEEP_AGE_SECONDS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        """Queue executor rooted at ``queue_dir`` (created if missing).

        ``point_timeout`` is the cooperative per-task deadline (the
        queue executes in-process, like the serial executor);
        ``orphan_age`` overrides the janitor's lease threshold (tests
        use 0 to requeue immediately — which also disables the
        heartbeat). ``run_task`` is the test seam over
        :func:`~repro.exec.task.execute_task`; ``clock`` the wall
        clock the janitor and heartbeat share (epoch seconds,
        comparable to file mtimes).
        """
        self.queue_dir = queue_dir
        self.notes: List[str] = []
        self._pending_dir = os.path.join(queue_dir, "pending")
        self._inflight_dir = os.path.join(queue_dir, "inflight")
        self._results_dir = os.path.join(queue_dir, "results")
        for directory in (
            self._pending_dir, self._inflight_dir, self._results_dir
        ):
            os.makedirs(directory, exist_ok=True)
        self._point_timeout = point_timeout
        self._fault_plan = fault_plan
        self._backend_resilience = backend_resilience
        self._run_task = run_task
        self._orphan_age = orphan_age
        self._clock = clock
        self._waiters: Dict[str, List[EvaluationTask]] = {}
        self._served: Deque[Tuple[EvaluationTask, TaskResult]] = deque()
        self._executed = 0
        self._coalesced = 0
        self._orphans_requeued = 0
        self._depth_high_water = 0
        self._sweep_orphaned_inflight()

    # ------------------------------------------------------------------
    # Janitor
    # ------------------------------------------------------------------
    def _sweep_orphaned_inflight(self) -> None:
        """Requeue task files whose lease expired (crashed drainer)."""
        requeued = sweep_orphaned_inflight(
            self._pending_dir, self._inflight_dir, self._orphan_age,
            clock=self._clock,
        )
        if requeued:
            self._orphans_requeued = requeued
            self.notes.append(
                f"work queue janitor: requeued {requeued} orphaned "
                f"in-flight task(s) in {self.queue_dir}"
            )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, task: EvaluationTask) -> None:
        """Enqueue one task, coalescing on its cache key.

        A key already being waited on, already queued on disk, or
        already answered in the results store is not enqueued again;
        the submission is counted as coalesced and served from the
        single evaluation of that key.
        """
        key = task.cache_key()
        waiters = self._waiters.get(key)
        if waiters is not None:
            waiters.append(task)
            self._coalesced += 1
            return
        stored = self._load_stored(key)
        if stored is not None:
            self._served.append((task, stored))
            self._coalesced += 1
            return
        self._waiters[key] = [task]
        if self._queued_files(key):
            # Persisted by an earlier (possibly crashed) submitter:
            # ride on that file instead of enqueueing a duplicate.
            self._coalesced += 1
        else:
            self._write_pending(task, key)
        depth = len(os.listdir(self._pending_dir)) + len(
            os.listdir(self._inflight_dir)
        )
        self._depth_high_water = max(self._depth_high_water, depth)

    @property
    def pending(self) -> int:
        """Submissions not yet yielded by :meth:`drain`."""
        return sum(len(w) for w in self._waiters.values()) + len(self._served)

    # ------------------------------------------------------------------
    # File plumbing
    # ------------------------------------------------------------------
    def _queued_files(self, key: str) -> List[str]:
        suffix = f"-{key}.json"
        found = []
        for directory in (self._pending_dir, self._inflight_dir):
            for name in os.listdir(directory):
                if name.endswith(suffix):
                    found.append(os.path.join(directory, name))
        return found

    def _write_pending(self, task: EvaluationTask, key: str) -> None:
        counter = next_counter(
            self.queue_dir, self._pending_dir, self._inflight_dir
        )
        name = pending_name(task.priority, counter, key)
        atomic_write_json(
            os.path.join(self._pending_dir, name), task.to_json_dict()
        )

    def _load_stored(self, key: str) -> Optional[TaskResult]:
        path = os.path.join(self._results_dir, f"{key}.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return TaskResult.from_json_dict(payload)
        except (OSError, ValueError, TaskError):
            return None  # absent or unreadable: evaluate fresh

    def _store_result(self, key: str, result: TaskResult) -> None:
        try:
            atomic_write_json(
                os.path.join(self._results_dir, f"{key}.json"),
                result.to_json_dict(),
            )
        except OSError:
            pass  # a full or read-only store must not fail the task

    def _claim_next(self) -> Optional[str]:
        """Atomically move the first pending file to ``inflight/``."""
        return claim_next_pending(self._pending_dir, self._inflight_dir)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run(self, task: EvaluationTask) -> TaskResult:
        runner = self._run_task
        if runner is None:
            runner = _task.execute_task
        self._executed += 1
        return runner(
            task,
            self._fault_plan,
            self._backend_resilience,
            self._point_timeout,
        )

    def _dispatch(self, key: str, result: TaskResult) -> List[TaskResult]:
        """Stamp one evaluation's result onto every waiting submission."""
        waiters = self._waiters.pop(key, [])
        stamped = []
        for position, waiter in enumerate(waiters):
            stamped.append(
                replace(
                    result,
                    index=waiter.index,
                    series=waiter.series,
                    x=waiter.x,
                    attempt=waiter.attempt,
                    coalesced=position > 0,
                )
            )
        return stamped

    def drain(self) -> Iterator[TaskResult]:
        """Execute queued tasks in priority order; yield results for
        every local submission (coalesced ones included) until none
        remain waiting. Queued tasks belonging to other submitters are
        executed and stored but not yielded."""
        while self._waiters or self._served:
            while self._served:
                waiter, stored = self._served.popleft()
                yield replace(
                    stored,
                    index=waiter.index,
                    series=waiter.series,
                    x=waiter.x,
                    attempt=waiter.attempt,
                    coalesced=True,
                )
            if not self._waiters:
                continue
            claimed = self._claim_next()
            if claimed is None:
                # Waiters remain but no file is claimable (lost to a
                # crash before the janitor threshold, or claimed by a
                # foreign drainer that died): evaluate from the
                # in-memory submission so the sweep always completes.
                key = next(iter(self._waiters))
                result = self._run(self._waiters[key][0])
                if result.ok:
                    self._store_result(key, result)
                for stamped in self._dispatch(key, result):
                    yield stamped
                continue
            try:
                with open(claimed, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                task = EvaluationTask.from_json_dict(payload)
            except (OSError, ValueError, TaskError) as exc:
                self.notes.append(
                    f"work queue: dropped unreadable task file "
                    f"{os.path.basename(claimed)} ({exc})"
                )
                try:
                    os.unlink(claimed)
                except OSError:
                    pass
                continue
            key = task.cache_key()
            # Heartbeat the claim while it runs: another drainer's
            # janitor must see a live lease, however slow the task.
            with InflightLease(claimed, self._orphan_age, self._clock):
                result = self._run(task)
            if result.ok:
                self._store_result(key, result)
            try:
                os.unlink(claimed)
            except OSError:
                pass
            for stamped in self._dispatch(key, result):
                yield stamped

    def close(self) -> None:
        """Nothing to release — the queue directory *is* the state."""

    def stats(self) -> Dict[str, Any]:
        """Counters for the run manifest's ``execution`` section."""
        return {
            "executor": self.capabilities.name,
            "tasks_executed": self._executed,
            "coalesced": self._coalesced,
            "queue_depth_high_water": self._depth_high_water,
            "orphans_requeued": self._orphans_requeued,
        }
