"""The executor protocol: submit tasks, drain results.

An *executor* is anything that turns submitted
:class:`~repro.exec.task.EvaluationTask` objects into
:class:`~repro.exec.task.TaskResult` envelopes. The protocol is
deliberately small — ``submit`` / ``pending`` / ``drain`` / ``close``
plus a :class:`ExecutorCapabilities` record and a ``stats()``
snapshot — so the retry/journal policy layer
(:class:`~repro.experiments.resilience.SweepSupervisor`) can drive a
serial loop, a process pool, or a persistent on-disk queue without
knowing which it has.

Capability flags tell the policy layer what it may rely on:

* ``parallel`` — tasks may complete out of submission order.
* ``preemptive_timeout`` — a hung task can be killed from outside
  (only the pool can; in-process executors enforce ``point_timeout``
  cooperatively via the simulation's wall-clock budget).
* ``persistent`` — submitted work survives a crashed supervisor.
* ``deduplicates`` — identical submissions (same cache key) are
  coalesced and evaluated once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

from .task import EvaluationTask, TaskResult

__all__ = [
    "EXECUTOR_IDS",
    "ExecutorCapabilities",
    "ExecutorError",
    "Executor",
    "make_executor",
]

#: The registered executor names ``make_executor`` accepts, in the
#: order the CLI advertises them.
EXECUTOR_IDS = ("serial", "pool", "queue")


class ExecutorError(RuntimeError):
    """An executor cannot be built or has reached an unusable state
    (unknown name, missing queue directory, stalled drain)."""


@dataclass(frozen=True)
class ExecutorCapabilities:
    """What an executor implementation can promise its driver.

    Attributes
    ----------
    name:
        Registered executor id (``"serial"``, ``"pool"``, ``"queue"``).
    parallel:
        Results may arrive out of submission order.
    preemptive_timeout:
        A hung task can be killed from outside the evaluating process.
    persistent:
        Submitted tasks survive a supervisor crash and can be resumed.
    deduplicates:
        Identical submissions (equal cache keys) are coalesced.
    """

    name: str
    parallel: bool = False
    preemptive_timeout: bool = False
    persistent: bool = False
    deduplicates: bool = False


@runtime_checkable
class Executor(Protocol):
    """Protocol every executor implements.

    The lifecycle is: ``submit()`` any number of tasks, iterate
    ``drain()`` to pull completed :class:`TaskResult` envelopes (the
    iterator ends when no submitted work remains), interleave further
    ``submit()`` calls freely (retries), and ``close()`` when done.
    ``notes`` accumulates human-readable degradation messages (pool
    death, janitor action) for the caller to drain into figure notes.
    """

    capabilities: ExecutorCapabilities
    notes: List[str]

    def submit(self, task: EvaluationTask) -> None:
        """Accept one task for execution."""
        ...

    @property
    def pending(self) -> int:
        """Number of submitted tasks not yet yielded by :meth:`drain`."""
        ...

    def drain(self) -> Iterator[TaskResult]:
        """Yield results until no submitted work remains."""
        ...

    def close(self) -> None:
        """Release resources (worker pools, file handles). Idempotent."""
        ...

    def stats(self) -> Dict[str, Any]:
        """Execution counters for the run manifest (executor id,
        tasks executed, coalesced count, queue depth high-water)."""
        ...


def make_executor(
    name: str,
    processes: Optional[int] = None,
    point_timeout: Optional[float] = None,
    fault_plan: Optional[Any] = None,
    backend_resilience: Optional[Any] = None,
    queue_dir: Optional[str] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    pool_factory: Optional[Callable[[], Any]] = None,
    run_task: Optional[Callable[..., TaskResult]] = None,
) -> "Executor":
    """Build a registered executor by name.

    ``"serial"`` runs tasks in-process in submission order;
    ``"pool"`` fans out over ``processes`` worker processes (default
    2) with preemptive hang detection; ``"queue"`` persists tasks to
    ``queue_dir`` (required) and coalesces identical submissions on
    the cache key. Unknown names and a queue without a directory
    raise :class:`ExecutorError`.

    ``clock`` / ``sleep`` / ``pool_factory`` / ``run_task`` are
    injectable for tests (fake time, stub pools, canned evaluation).
    """
    if name == "serial":
        from .serial import SerialExecutor

        return SerialExecutor(
            point_timeout=point_timeout,
            fault_plan=fault_plan,
            backend_resilience=backend_resilience,
            run_task=run_task,
        )
    if name == "pool":
        from .pool import PoolExecutor

        return PoolExecutor(
            processes=processes if processes is not None else 2,
            point_timeout=point_timeout,
            fault_plan=fault_plan,
            backend_resilience=backend_resilience,
            clock=clock,
            sleep=sleep,
            pool_factory=pool_factory,
            run_task=run_task,
        )
    if name == "queue":
        from .queue import QueueExecutor

        if not queue_dir:
            raise ExecutorError(
                "the queue executor needs a queue directory; pass "
                "queue_dir= (CLI: --queue-dir)"
            )
        return QueueExecutor(
            queue_dir,
            point_timeout=point_timeout,
            fault_plan=fault_plan,
            backend_resilience=backend_resilience,
            run_task=run_task,
        )
    raise ExecutorError(
        f"unknown executor {name!r}; known: {', '.join(EXECUTOR_IDS)}"
    )
