"""Serializable evaluation tasks and their result envelope.

The unit of work for the whole execution layer is one
:class:`EvaluationTask`: a sweep point (model parameters + evaluation
plan), the backend that should evaluate it, the seed policy that makes
it reproducible, and the attempt number the retry layer stamped on it.
A task is a frozen dataclass of picklable primitives, round-trips
through JSON (:meth:`EvaluationTask.to_json_dict` /
:meth:`EvaluationTask.from_json_dict`) under a versioned schema, and
is content-addressed by the same canonical digest the result cache
files its entries under (:func:`repro.backends.cache.request_digest`)
— so "two submissions are the same work" means exactly "the cache
would serve both from one entry".

:func:`execute_task` is the one evaluation recipe every executor runs
(in-process for the serial and queue executors, inside a worker
process for the pool): resolve the backend, optionally wrap it in a
:class:`~repro.resilience.backend.ResilientBackend`, evaluate under
the task's derived seed, best-effort write the *clean* result through
to the cache, and fold any exception into a structured
:class:`TaskResult` failure payload — nothing un-picklable ever
crosses a process boundary.
"""

from __future__ import annotations

import traceback
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..backends import EvaluationPlan, ResultCache, get_backend
from ..backends.cache import request_digest
from ..core.parameters import ModelParameters
from ..core.simulation import SimulationPlan
from ..resilience.retry import derive_attempt_seed

__all__ = [
    "TASK_SCHEMA_VERSION",
    "Outcome",
    "TaskError",
    "EvaluationTask",
    "TaskResult",
    "failure_payload",
    "execute_task",
]

#: Version of the task / result JSON schema. Bump when a field changes
#: meaning; readers reject foreign versions instead of guessing.
TASK_SCHEMA_VERSION = 1

#: A point outcome as journaled and assembled:
#: ``(series, x, mean, half_width)``.
Outcome = Tuple[str, float, float, float]


class TaskError(ValueError):
    """A task or result payload cannot be decoded (wrong schema
    version, missing fields, malformed structure)."""


def failure_payload(exc: BaseException) -> Dict[str, str]:
    """Serialise an exception for transport out of a worker process."""
    return {
        "error_type": type(exc).__name__,
        "error_message": str(exc),
        "traceback": traceback.format_exc(),
    }


@dataclass(frozen=True)
class EvaluationTask:
    """One serializable unit of evaluation work.

    Attributes
    ----------
    index:
        Position of the point in its sweep (also the retry ledger key).
    series / x:
        The figure coordinates the outcome will be plotted under.
    params:
        The model configuration to evaluate.
    plan:
        The evaluation plan *before* seeding: the effective seed of an
        attempt is :func:`~repro.resilience.retry.derive_attempt_seed`
        of ``(base_seed, attempt)``, applied by :meth:`seeded_plan`.
    backend:
        Registered backend id to evaluate through (resolved by name in
        whichever process runs the task).
    base_seed:
        The point's own seed (``sweep seed + index`` by convention).
    attempt:
        Zero-based retry counter stamped by the supervisor.
    priority:
        Queue ordering hint (lower runs first; non-negative).
    cache_dir:
        Optional result-cache root the executing side writes clean
        results through to.
    schema_version:
        Stamped :data:`TASK_SCHEMA_VERSION` for the JSON round-trip.
    """

    index: int
    series: str
    x: float
    params: ModelParameters
    plan: EvaluationPlan
    backend: str
    base_seed: int = 0
    attempt: int = 0
    priority: int = 0
    cache_dir: Optional[str] = None
    schema_version: int = TASK_SCHEMA_VERSION

    @property
    def seed(self) -> int:
        """The effective seed of this attempt (attempt 0 = base seed)."""
        return derive_attempt_seed(self.base_seed, self.attempt)

    @property
    def key(self) -> Tuple[str, float]:
        """The figure key ``(series, x)`` this task's outcome fills."""
        return (self.series, self.x)

    def seeded_plan(self) -> EvaluationPlan:
        """The evaluation plan rooted at this attempt's derived seed."""
        return self.plan.with_seed(self.seed)

    def with_attempt(self, attempt: int) -> "EvaluationTask":
        """The same work stamped with a different attempt number."""
        return replace(self, attempt=attempt)

    def cache_key(self) -> str:
        """Canonical digest of this task's evaluation request.

        Identical to the :class:`~repro.backends.cache.ResultCache`
        entry key for the same request (backend id + version, params,
        seeded plan), so queue-level deduplication and cache hits
        agree on what "the same work" means. The seed participates:
        different attempts (or sweeps rooted at different seeds) are
        distinct work.
        """
        backend = get_backend(self.backend)
        return request_digest(backend, self.params, self.seeded_plan())

    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict that :meth:`from_json_dict` reverses."""
        plan = self.plan
        return {
            "schema_version": self.schema_version,
            "index": self.index,
            "series": self.series,
            "x": self.x,
            "backend": self.backend,
            "base_seed": self.base_seed,
            "attempt": self.attempt,
            "priority": self.priority,
            "cache_dir": self.cache_dir,
            "params": asdict(self.params),
            "plan": {
                "metrics": list(plan.metrics),
                "seed": plan.seed,
                "duration": plan.duration,
                "simulation": asdict(plan.simulation),
            },
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "EvaluationTask":
        """Rebuild a task from :meth:`to_json_dict` output.

        Raises :class:`TaskError` on a foreign schema version or a
        payload that does not reconstruct — a persisted queue must
        fail loudly on tasks written by an incompatible version rather
        than evaluate something other than what was submitted.
        """
        if not isinstance(payload, dict):
            raise TaskError(
                f"task payload must be an object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != TASK_SCHEMA_VERSION:
            raise TaskError(
                f"task schema version {version!r} is not readable by this "
                f"package (expected {TASK_SCHEMA_VERSION})"
            )
        try:
            plan_payload = payload["plan"]
            plan = EvaluationPlan(
                metrics=tuple(plan_payload["metrics"]),
                simulation=SimulationPlan(**plan_payload["simulation"]),
                seed=plan_payload["seed"],
                duration=plan_payload["duration"],
            )
            return cls(
                index=int(payload["index"]),
                series=payload["series"],
                x=float(payload["x"]),
                params=ModelParameters(**payload["params"]),
                plan=plan,
                backend=payload["backend"],
                base_seed=int(payload["base_seed"]),
                attempt=int(payload["attempt"]),
                priority=int(payload["priority"]),
                cache_dir=payload.get("cache_dir"),
            )
        except TaskError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise TaskError(f"malformed task payload: {exc}") from exc


@dataclass
class TaskResult:
    """What executing one :class:`EvaluationTask` produced.

    ``status`` is ``"ok"`` or ``"error"``. An ok result carries the
    figure outcome (``mean`` / ``half_width``) plus the full
    serialised :class:`~repro.backends.base.EvaluationResult` under
    ``result``; an error result carries the structured
    :func:`failure_payload` under ``failure``. Provenance travels with
    the envelope: which attempt ran, under which derived seed, and
    whether the result was ``coalesced`` (served from another
    submission's evaluation or a persistent queue's result store
    rather than evaluated for this submission).
    """

    status: str
    index: int
    series: str
    x: float
    attempt: int
    seed_used: int
    mean: Optional[float] = None
    half_width: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    failure: Optional[Dict[str, str]] = None
    coalesced: bool = False
    schema_version: int = field(default=TASK_SCHEMA_VERSION)

    @property
    def ok(self) -> bool:
        """True when the evaluation succeeded."""
        return self.status == "ok"

    @property
    def outcome(self) -> Outcome:
        """The figure outcome ``(series, x, mean, half_width)``.

        Only meaningful on ok results; an error result raises
        :class:`TaskError` rather than fabricate numbers.
        """
        if not self.ok or self.mean is None or self.half_width is None:
            raise TaskError(
                f"task {self.index} (attempt {self.attempt}) has no outcome: "
                f"status={self.status!r}"
            )
        return (self.series, self.x, self.mean, self.half_width)

    def to_json_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict that :meth:`from_json_dict` reverses."""
        return {
            "schema_version": self.schema_version,
            "status": self.status,
            "index": self.index,
            "series": self.series,
            "x": self.x,
            "attempt": self.attempt,
            "seed_used": self.seed_used,
            "mean": self.mean,
            "half_width": self.half_width,
            "result": self.result,
            "failure": self.failure,
            "coalesced": self.coalesced,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "TaskResult":
        """Rebuild a result envelope from :meth:`to_json_dict` output.

        Raises :class:`TaskError` on foreign schema versions or
        malformed payloads, mirroring :meth:`EvaluationTask.from_json_dict`.
        """
        if not isinstance(payload, dict):
            raise TaskError(
                f"result payload must be an object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != TASK_SCHEMA_VERSION:
            raise TaskError(
                f"result schema version {version!r} is not readable by this "
                f"package (expected {TASK_SCHEMA_VERSION})"
            )
        try:
            return cls(
                status=payload["status"],
                index=int(payload["index"]),
                series=payload["series"],
                x=float(payload["x"]),
                attempt=int(payload["attempt"]),
                seed_used=int(payload["seed_used"]),
                mean=payload.get("mean"),
                half_width=payload.get("half_width"),
                result=payload.get("result"),
                failure=payload.get("failure"),
                coalesced=bool(payload.get("coalesced", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TaskError(f"malformed result payload: {exc}") from exc


def execute_task(
    task: EvaluationTask,
    fault_plan: Optional[Any] = None,
    backend_resilience: Optional[Any] = None,
    deadline: Optional[float] = None,
) -> TaskResult:
    """Evaluate one task; never raise.

    Resolves the backend by name (backends register at import time in
    every process), evaluates under the task's derived attempt seed,
    and best-effort writes the result through to the task's cache.
    Exceptions are folded into a structured ``"error"``
    :class:`TaskResult` before they cross any process boundary.

    ``deadline`` is a cooperative per-point wall-clock budget
    (seconds): it tightens the simulation plan's ``wall_clock_budget``
    for the *evaluation only*, so in-process executors get best-effort
    timeout enforcement. The cache entry is still keyed and stored
    under the task's own (un-tightened) seeded plan — a deadline
    changes whether a point finishes, never its value, so it must not
    fork the cache key space.

    With ``backend_resilience`` set, the backend is wrapped in a
    :class:`~repro.resilience.backend.ResilientBackend` (deadlines,
    seed-deriving retries, circuit breaker, degradation chain,
    backend-level fault injection). Only a *clean* execution — the
    primary backend, first attempt, base seed, exactly what an
    unfaulted run would produce — is written to the result cache, so
    the cache can never launder a degraded value into a clean run.
    """
    try:
        if fault_plan is not None:
            fault_plan.before_point(task.index, task.attempt)
        backend = get_backend(task.backend)
        evaluator = backend
        if backend_resilience is not None:
            from ..resilience import ResilientBackend

            evaluator = ResilientBackend(backend, backend_resilience)
        seeded_plan = task.seeded_plan()
        eval_plan = seeded_plan
        if deadline is not None:
            budget = seeded_plan.simulation.wall_clock_budget
            tightened = deadline if budget is None else min(budget, deadline)
            eval_plan = replace(
                seeded_plan,
                simulation=replace(
                    seeded_plan.simulation, wall_clock_budget=tightened
                ),
            )
        result = evaluator.evaluate(task.params, eval_plan)
        metric_value = result.metric(seeded_plan.metrics[0])
        report = getattr(evaluator, "last_report", None)
        cacheable = report is None or report.clean
        if task.cache_dir and cacheable:
            try:
                ResultCache(task.cache_dir).put(
                    backend, task.params, seeded_plan, result
                )
            except OSError:
                pass  # a full or read-only cache must not fail the point
        return TaskResult(
            status="ok",
            index=task.index,
            series=task.series,
            x=task.x,
            attempt=task.attempt,
            seed_used=task.seed,
            mean=metric_value.mean,
            half_width=metric_value.half_width,
            result=result.to_json_dict(),
        )
    except Exception as exc:
        return TaskResult(
            status="error",
            index=task.index,
            series=task.series,
            x=task.x,
            attempt=task.attempt,
            seed_used=task.seed,
            failure=failure_payload(exc),
        )
