"""Process-pool executor with hang detection and pool-death recovery.

The behavior is the former ``SweepSupervisor._run_pooled`` loop,
extracted behind the :class:`~repro.exec.base.Executor` protocol
bit-for-bit:

* Up to ``processes`` tasks are in flight at once; the executor waits
  on the *oldest* submission (FIFO head) so a hang is charged against
  the task that has actually been running longest.
* A task that produces no result within ``point_timeout`` seconds is
  declared hung: the pool is terminated (its slot is unrecoverable),
  the other in-flight tasks go back to the front of the ready queue,
  a structured ``PointTimeout`` failure is yielded for the hung task
  (the policy layer decides whether to retry it), and a fresh pool is
  spawned lazily for the next submission.
* If the pool infrastructure itself dies (``apply_async`` or result
  retrieval raises — workers never raise through the task protocol),
  the executor notes the degradation and falls back to executing
  in-process, so a sweep always completes.

Pool shutdown failures are counted (``sweep.pool_shutdown_errors``),
noted, and re-raised unless a more primary error is already
propagating — see :func:`shutdown_pool`.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from ..obs import metrics as obs_metrics
from . import task as _task
from .base import ExecutorCapabilities
from .task import EvaluationTask, TaskResult

__all__ = ["PoolExecutor", "shutdown_pool"]


def shutdown_pool(
    pool: Any,
    terminate: bool = False,
    notes: Optional[List[str]] = None,
) -> None:
    """Close or terminate a worker pool and join it.

    A cleanup failure used to be ``except Exception: pass``, which
    masked pool-infrastructure faults entirely. Now it is counted
    (``sweep.pool_shutdown_errors``), recorded in ``notes``, and —
    when no prior exception is already propagating — re-raised, so
    a shutdown failure only stays quiet while a more primary error
    is in flight (where raising would replace that error).
    """
    prior_error_in_flight = sys.exc_info()[0] is not None
    try:
        if terminate:
            pool.terminate()
        else:
            pool.close()
        pool.join()
    except Exception as exc:
        obs_metrics.registry().counter("sweep.pool_shutdown_errors").inc()
        message = (
            f"worker pool shutdown failed: {type(exc).__name__}: {exc}"
        )
        if notes is not None:
            notes.append(message)
        if not prior_error_in_flight:
            raise


class PoolExecutor:
    """Execute tasks across worker processes with hang supervision."""

    capabilities = ExecutorCapabilities(
        name="pool",
        parallel=True,
        preemptive_timeout=True,
        persistent=False,
        deduplicates=False,
    )

    def __init__(
        self,
        processes: int = 2,
        point_timeout: Optional[float] = None,
        fault_plan: Optional[Any] = None,
        backend_resilience: Optional[Any] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        pool_factory: Optional[Callable[[], Any]] = None,
        run_task: Optional[Callable[..., TaskResult]] = None,
    ) -> None:
        """Pool executor over ``processes`` workers.

        ``clock`` / ``sleep`` / ``pool_factory`` are injectable so
        tests drive hang detection with a fake clock and stub pools.
        ``run_task`` overrides the (picklable, module-level) task
        function shipped to workers; the default is
        :func:`~repro.exec.task.execute_task`.
        """
        self.processes = max(1, processes)
        self.notes: List[str] = []
        self._ready: Deque[EvaluationTask] = deque()
        # (task, AsyncResult, submit_time), FIFO.
        self._inflight: Deque[Tuple[EvaluationTask, Any, float]] = deque()
        self._point_timeout = point_timeout
        self._fault_plan = fault_plan
        self._backend_resilience = backend_resilience
        self._clock = clock
        self._sleep = sleep
        self._pool_factory = pool_factory or (
            lambda: multiprocessing.Pool(self.processes)
        )
        self._run_task = run_task
        self._pool: Optional[Any] = None
        self._degraded = False
        self._executed = 0
        self._timeouts = 0
        self._pools_started = 0

    def submit(self, task: EvaluationTask) -> None:
        """Append one task to the ready queue."""
        self._ready.append(task)

    @property
    def pending(self) -> int:
        """Tasks submitted but not yet yielded (ready + in flight)."""
        return len(self._ready) + len(self._inflight)

    def _task_function(self) -> Callable[..., TaskResult]:
        if self._run_task is not None:
            return self._run_task
        return _task.execute_task

    def _requeue(self, head: Optional[EvaluationTask] = None) -> None:
        """Put ``head`` (if given) and every in-flight task back at the
        front of the ready queue, preserving order."""
        entries = ([head] if head is not None else []) + [
            task for task, _, _ in self._inflight
        ]
        self._inflight.clear()
        for task in reversed(entries):
            self._ready.appendleft(task)

    def _degrade(self, message: str) -> None:
        self.notes.append(message)
        self._degraded = True

    def _run_in_process(self, task: EvaluationTask) -> TaskResult:
        """Degraded-mode execution: evaluate in the supervisor process."""
        self._executed += 1
        return self._task_function()(
            task,
            self._fault_plan,
            self._backend_resilience,
            self._point_timeout,
        )

    def drain(self) -> Iterator[TaskResult]:
        """Yield results until no submitted work remains.

        Results arrive in FIFO-head completion order; a hang yields a
        structured ``PointTimeout`` error result for the hung task.
        """
        timeout = self._point_timeout
        while self._ready or self._inflight:
            if self._degraded:
                yield self._run_in_process(self._ready.popleft())
                continue
            if self._pool is None:
                try:
                    self._pool = self._pool_factory()
                    self._pools_started += 1
                except Exception as exc:
                    self._degrade(
                        f"could not start worker pool "
                        f"({type(exc).__name__}: {exc}); "
                        "degrading to serial execution"
                    )
                    continue
            now = self._clock()
            task: Optional[EvaluationTask] = None
            try:
                while self._ready and len(self._inflight) < self.processes:
                    task = self._ready.popleft()
                    async_result = self._pool.apply_async(
                        self._task_function(),
                        (task, self._fault_plan, self._backend_resilience),
                    )
                    self._inflight.append((task, async_result, now))
                    task = None
            except Exception as exc:
                self._requeue(head=task)
                self._degrade(
                    f"worker pool died ({type(exc).__name__}: {exc}); "
                    "degrading to serial execution"
                )
                shutdown_pool(self._pool, notes=self.notes)
                self._pool = None
                continue

            head, async_result, submitted = self._inflight[0]
            try:
                if timeout is not None:
                    remaining = submitted + timeout - self._clock()
                    async_result.wait(max(0.0, remaining))
                    if not async_result.ready():
                        # Hung worker: the pool slot is lost. Kill the
                        # pool, put the other in-flight tasks back, and
                        # report the hang; a fresh pool is spawned
                        # lazily on the next submission.
                        self._inflight.popleft()
                        self._requeue()
                        self._timeouts += 1
                        shutdown_pool(
                            self._pool, terminate=True, notes=self.notes
                        )
                        self._pool = None
                        yield TaskResult(
                            status="error",
                            index=head.index,
                            series=head.series,
                            x=head.x,
                            attempt=head.attempt,
                            seed_used=head.seed,
                            failure={
                                "error_type": "PointTimeout",
                                "error_message": (
                                    f"no result within {timeout:g} s "
                                    f"(attempt {head.attempt + 1})"
                                ),
                            },
                        )
                        continue
                task_result = async_result.get()
            except Exception as exc:
                # The pool infrastructure itself failed (workers never
                # raise through the protocol). Fall back to in-process
                # execution.
                self._requeue()
                self._degrade(
                    f"worker pool died ({type(exc).__name__}: {exc}); "
                    "degrading to serial execution"
                )
                shutdown_pool(self._pool, terminate=True, notes=self.notes)
                self._pool = None
                continue

            self._inflight.popleft()
            self._executed += 1
            yield task_result

    def close(self) -> None:
        """Terminate and join the worker pool, if one is alive."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            shutdown_pool(pool, terminate=True, notes=self.notes)

    def stats(self) -> Dict[str, Any]:
        """Counters for the run manifest's ``execution`` section."""
        return {
            "executor": self.capabilities.name,
            "tasks_executed": self._executed,
            "processes": self.processes,
            "timeouts": self._timeouts,
            "pools_started": self._pools_started,
            "degraded_to_serial": self._degraded,
        }
