"""Structured observability: metrics, run manifests, trace export.

Every production system this repository aspires to be (see
ROADMAP.md) needs three things its simulations did not have until
this package existed:

* **Metrics** (:mod:`repro.obs.metrics`) — a process-local registry of
  counters, gauges and timing summaries that the SAN executive, the
  cluster engine, the evaluation backends and the sweep runner all
  record into. Exported as JSON, rendered by ``python -m repro obs``.

* **Run manifests** (:mod:`repro.obs.manifest`) — one versioned JSON
  document per figure run, written atomically next to the figure
  archive: parameters, backend identity and version, RNG seeds, cache
  hit/miss counts, retry and failure counts, kernel statistics, wall
  clock, and the package/git version that produced it. A figure whose
  manifest is missing or unreadable is not attributable; a manifest
  whose numbers disagree with the archive is a bug.

* **Trace export** (:mod:`repro.obs.trace`) — a single sink interface
  (JSON-lines file, in-memory, or null) that both the SAN activity
  tracer (:class:`repro.san.trace.SinkTracer`) and the cluster
  simulator's protocol lifecycle feed, with sampling and windowing so
  tracing-off hot paths stay within the engine benchmark gate.

This package is a *leaf*: it imports nothing from the rest of
``repro`` except the version string, so every other layer can depend
on it without cycles. See ``docs/OBSERVABILITY.md`` for schemas and
naming conventions.
"""

from __future__ import annotations

from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    ManifestError,
    RunManifest,
    load_manifest,
    manifest_path,
    render_manifest,
    render_metrics_snapshot,
    write_manifest,
)
from .metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timing,
    registry,
    set_registry,
)
from .trace import (
    JsonlTraceSink,
    MemorySink,
    NullSink,
    TraceSink,
    default_sink,
    set_default_sink,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "ManifestError",
    "RunManifest",
    "load_manifest",
    "manifest_path",
    "render_manifest",
    "render_metrics_snapshot",
    "write_manifest",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timing",
    "registry",
    "set_registry",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlTraceSink",
    "default_sink",
    "set_default_sink",
]
