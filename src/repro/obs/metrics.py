"""Process-local metrics registry: counters, gauges, timing summaries.

The registry is deliberately simple — plain Python objects behind two
dictionary lookups per update — because it is recorded into from the
simulation layers *once per run* (never per event; the hot loops are
protected by the engine benchmark gate). Worker processes each have
their own registry; the numbers a sweep's manifest reports therefore
come from the supervisor process, which observes every outcome.

Naming convention (see docs/OBSERVABILITY.md): dotted lowercase paths,
``<subsystem>.<what>`` — e.g. ``san.runs``, ``cache.hits``,
``backend.san-sim.evaluations``, ``sweep.retries``.

Usage::

    from repro.obs import metrics
    reg = metrics.registry()
    reg.counter("cache.hits").inc()
    with reg.timer("backend.ctmc.evaluate_seconds"):
        ...
    print(json.dumps(reg.snapshot()))
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Timing",
    "MetricsRegistry",
    "registry",
    "set_registry",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:g})"


class Timing:
    """A streaming summary of durations (seconds): count/total/min/max.

    Kept as a summary rather than raw samples so long sweeps cannot
    grow memory; the mean is derived on export.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one duration into the summary."""
        if seconds < 0:
            raise ValueError(f"timing {self.name!r} got negative duration")
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds

    @property
    def mean(self) -> float:
        """Average duration (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "min_seconds": self.minimum if self.count else 0.0,
            "max_seconds": self.maximum,
        }

    def __repr__(self) -> str:
        return f"Timing({self.name}: n={self.count}, total={self.total:.3f}s)"


class _Timer:
    """Context manager recording a wall-clock duration into a Timing."""

    __slots__ = ("_timing", "_start")

    def __init__(self, timing: Timing) -> None:
        self._timing = timing
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.monotonic()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timing.observe(time.monotonic() - self._start)


class MetricsRegistry:
    """A named collection of counters, gauges and timings.

    Instruments are created on first use and live for the registry's
    lifetime; :meth:`snapshot` exports everything as one JSON-able
    dictionary, :meth:`render` as an aligned human-readable report.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timings: Dict[str, Timing] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The named counter (created at zero on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The named gauge (created at zero on first use)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timing(self, name: str) -> Timing:
        """The named timing summary (created empty on first use)."""
        instrument = self._timings.get(name)
        if instrument is None:
            instrument = self._timings[name] = Timing(name)
        return instrument

    def timer(self, name: str) -> _Timer:
        """Context manager: times its block into ``timing(name)``."""
        return _Timer(self.timing(name))

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Everything recorded so far, as a JSON-able dictionary."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "timings": {
                name: t.as_dict() for name, t in sorted(self._timings.items())
            },
        }

    def nonzero(self) -> bool:
        """True when at least one instrument recorded something."""
        return (
            any(c.value for c in self._counters.values())
            or any(g.value for g in self._gauges.values())
            or any(t.count for t in self._timings.values())
        )

    def reset(self) -> None:
        """Drop every instrument (tests; fresh run boundaries)."""
        self._counters.clear()
        self._gauges.clear()
        self._timings.clear()

    def render(self) -> str:
        """Human-readable report of every instrument."""
        lines = []
        if self._counters:
            lines.append("counters:")
            for name, c in sorted(self._counters.items()):
                lines.append(f"  {name:<40} {c.value}")
        if self._gauges:
            lines.append("gauges:")
            for name, g in sorted(self._gauges.items()):
                lines.append(f"  {name:<40} {g.value:g}")
        if self._timings:
            lines.append("timings:")
            for name, t in sorted(self._timings.items()):
                lines.append(
                    f"  {name:<40} n={t.count} total={t.total:.3f}s "
                    f"mean={t.mean:.4f}s max={t.maximum:.3f}s"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __iter__(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._timings


#: The process-default registry everything records into unless told
#: otherwise. Swappable for tests via :func:`set_registry`.
_default = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-default registry."""
    return _default


def set_registry(new: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Replace the process-default registry (``None`` installs a fresh
    one); returns the previous registry so tests can restore it."""
    global _default
    previous = _default
    _default = new if new is not None else MetricsRegistry()
    return previous
