"""Unified trace export: one sink interface for every event source.

The SAN executive already had a per-firing :class:`~repro.san.trace.Tracer`
and the cluster simulator had ad-hoc counters; this module gives both
(and anything else) one destination type. A *sink* receives
``emit(time, kind, name, **fields)`` calls and decides what to keep:

* :class:`NullSink` — drops everything (the default; one attribute
  check per offered event).
* :class:`MemorySink` — keeps events for test assertions.
* :class:`JsonlTraceSink` — appends one JSON object per kept event to
  a ``.jsonl`` file, with **sampling** (keep every Nth event per kind)
  and **windowing** (stop after a budget of written events) so hot
  paths stay within the engine benchmark gate even with tracing on.

Event kinds in use (see docs/OBSERVABILITY.md): ``san.firing`` (one
activity firing, via :class:`repro.san.trace.SinkTracer`) and
``cluster.protocol`` (checkpoint-round lifecycle: quiesce, proceed,
abort, failure, recovery). Sinks are process-local, like the metrics
registry: worker processes do not share the supervisor's sink.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "ObsEvent",
    "TraceSink",
    "NullSink",
    "MemorySink",
    "JsonlTraceSink",
    "default_sink",
    "set_default_sink",
]


@dataclass(frozen=True)
class ObsEvent:
    """One exported event: when, what kind, which name, free fields."""

    time: float
    kind: str
    name: str
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "t": self.time, "kind": self.kind, "name": self.name,
        }
        record.update(self.fields)
        return record


class TraceSink:
    """Interface: receives events via :meth:`emit`; close when done."""

    def emit(self, time: float, kind: str, name: str, **fields: object) -> None:
        """Offer one event to the sink."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullSink(TraceSink):
    """Discards everything."""

    def emit(self, time: float, kind: str, name: str, **fields: object) -> None:
        pass


class MemorySink(TraceSink):
    """Keeps every offered event in order (tests, debugging)."""

    def __init__(self) -> None:
        self.events: List[ObsEvent] = []

    def emit(self, time: float, kind: str, name: str, **fields: object) -> None:
        self.events.append(ObsEvent(time, kind, name, fields))

    def of_kind(self, kind: str) -> List[ObsEvent]:
        """All events of one kind."""
        return [event for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)


class JsonlTraceSink(TraceSink):
    """Appends kept events to a JSON-lines file.

    Parameters
    ----------
    path:
        Destination file (created/truncated on open).
    sample_every:
        Keep one event in every ``sample_every`` offered *per kind*
        (1 = keep all). Sampling is deterministic — the first offered
        event of each kind is always kept — so tiny runs still leave a
        readable trace.
    max_events:
        Window: stop writing after this many kept events (``None`` =
        unbounded). Offered events are still counted, so the summary
        reports how much the window dropped.

    The per-kind ``offered``/``written`` counters are exported by
    :meth:`summary` and folded into run manifests.
    """

    def __init__(
        self,
        path: str,
        sample_every: int = 1,
        max_events: Optional[int] = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.path = path
        self.sample_every = sample_every
        self.max_events = max_events
        self.offered: Dict[str, int] = {}
        self.written = 0
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "w", encoding="utf-8")

    def emit(self, time: float, kind: str, name: str, **fields: object) -> None:
        seen = self.offered.get(kind, 0)
        self.offered[kind] = seen + 1
        if seen % self.sample_every:
            return
        if self.max_events is not None and self.written >= self.max_events:
            return
        if self._handle is None:
            return
        record: Dict[str, object] = {"t": time, "kind": kind, "name": name}
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.written += 1

    def summary(self) -> Dict[str, object]:
        """What the sink saw and kept (for manifests and the CLI)."""
        return {
            "path": str(self.path),
            "sample_every": self.sample_every,
            "max_events": self.max_events,
            "offered": dict(sorted(self.offered.items())),
            "written": self.written,
        }

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None


#: The process-default sink. A NullSink unless a driver (the CLI's
#: ``--trace-out``) installs a real one around a run.
_default: TraceSink = NullSink()


def default_sink() -> TraceSink:
    """The process-default trace sink."""
    return _default


def set_default_sink(sink: Optional[TraceSink]) -> TraceSink:
    """Install a new default sink (``None`` restores the NullSink);
    returns the previous sink so drivers can restore it."""
    global _default
    previous = _default
    _default = sink if sink is not None else NullSink()
    return previous
