"""Versioned run manifests: one JSON document per figure run.

A manifest makes a figure *attributable*: it records what produced
the numbers (backend id and version, package version, best-effort git
describe), how (plan, RNG seed policy), and at what cost (points
evaluated vs reused from cache or journal, retries, failures, kernel
statistics, wall clock). It is written atomically next to the figure
archive as ``<figure_id>.manifest.json``, and ``python -m repro obs``
re-validates and renders it.

Schema changes bump :data:`MANIFEST_SCHEMA_VERSION`; loaders reject
foreign versions with :class:`ManifestError` rather than misreading
them — the same discipline as the evaluation-result and figure-archive
schemas.
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .._version import __version__

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "ManifestError",
    "RunManifest",
    "git_describe",
    "manifest_path",
    "write_manifest",
    "load_manifest",
    "render_manifest",
    "render_metrics_snapshot",
]

#: Version of the run-manifest JSON schema.
MANIFEST_SCHEMA_VERSION = 1


class ManifestError(ValueError):
    """A manifest is missing, malformed, or of a foreign schema."""


def git_describe() -> Optional[str]:
    """Best-effort ``git describe`` of the source tree this package
    runs from; ``None`` when not a checkout (installed wheel, no git).
    Never raises — provenance is recorded when available, not required.
    """
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    described = completed.stdout.strip()
    return described or None


@dataclass
class RunManifest:
    """Everything needed to attribute and audit one figure run.

    Attributes
    ----------
    figure_id:
        The figure this run regenerated.
    backend / backend_version:
        The evaluation backend that produced every point.
    metric:
        The y-axis metric requested.
    seed:
        Root random seed; per-point and per-retry derivation is
        recorded in ``seed_policy``.
    plan:
        The simulation plan as a plain dictionary (warmup,
        observation, replications, confidence, kernel).
    points_total:
        Points the sweep declared.
    points_from_journal / points_from_cache:
        Points reused (checkpoint resume; content-addressed cache).
    new_evaluations:
        Points actually evaluated by this run — **zero on a warm
        cache**, the property the CI smoke job asserts.
    retries:
        Extra attempts beyond each point's first (fault tolerance).
    failed_points:
        Points that exhausted their retries.
    kernel_stats:
        Aggregated :class:`~repro.san.profiling.KernelStats` as a
        dictionary (serial sweeps; ``None`` when workers hid them).
    metrics:
        Snapshot of the supervisor-process metrics registry.
    trace:
        Summary of the trace sink, when one was installed.
    wall_clock_seconds:
        Real time the whole run took.
    validation:
        Optional summary of a :mod:`repro.validate` run covering this
        configuration (the ``to_json_dict`` of a
        :class:`~repro.validate.report.ValidationReport`); ``None``
        when no validation accompanied the run.
    resilience:
        Optional record of backend-level resilience activity (see
        :mod:`repro.resilience.events`): the structured event list —
        every deadline kill, retry, breaker transition and
        ``degraded_from`` stamp — plus a by-kind summary. ``None``
        when the run did not use a resilient backend wrapper. The
        field is additive and optional, so the schema version is
        unchanged: old manifests load as ``None``, and readers that
        predate it simply ignore the key.
    execution:
        Optional record of how the run's tasks were executed (see
        :mod:`repro.exec`): the executor id, tasks executed, coalesced
        submissions and queue depth high-water (queue executor),
        timeouts and pool restarts (pool executor), plus the
        per-point attempt counts. Additive and optional exactly like
        ``resilience``: the schema version is unchanged, old
        manifests load as ``None``.
    """

    figure_id: str
    backend: Optional[str] = None
    backend_version: Optional[int] = None
    metric: str = ""
    seed: int = 0
    seed_policy: str = (
        "point i uses seed+i; retry k uses stable_stream_key('retry/<seed>/<k>')"
    )
    preset: Optional[str] = None
    plan: Dict[str, Any] = field(default_factory=dict)
    points_total: int = 0
    points_from_journal: int = 0
    points_from_cache: int = 0
    new_evaluations: int = 0
    retries: int = 0
    failed_points: int = 0
    kernel_stats: Optional[Dict[str, Any]] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    trace: Optional[Dict[str, Any]] = None
    wall_clock_seconds: float = 0.0
    validation: Optional[Dict[str, Any]] = None
    resilience: Optional[Dict[str, Any]] = None
    execution: Optional[Dict[str, Any]] = None
    notes: List[str] = field(default_factory=list)
    schema_version: int = MANIFEST_SCHEMA_VERSION
    repro_version: str = __version__
    git_version: Optional[str] = None
    created_unix: float = 0.0

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the exact on-disk schema)."""
        return {
            "schema_version": self.schema_version,
            "repro_version": self.repro_version,
            "git_version": self.git_version,
            "created_unix": self.created_unix,
            "figure_id": self.figure_id,
            "backend": self.backend,
            "backend_version": self.backend_version,
            "metric": self.metric,
            "seed": self.seed,
            "seed_policy": self.seed_policy,
            "preset": self.preset,
            "plan": dict(self.plan),
            "points": {
                "total": self.points_total,
                "from_journal": self.points_from_journal,
                "from_cache": self.points_from_cache,
                "new_evaluations": self.new_evaluations,
                "retries": self.retries,
                "failed": self.failed_points,
            },
            "kernel_stats": self.kernel_stats,
            "metrics": self.metrics,
            "trace": self.trace,
            "wall_clock_seconds": self.wall_clock_seconds,
            "validation": self.validation,
            "resilience": self.resilience,
            "execution": self.execution,
            "notes": list(self.notes),
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest, rejecting foreign schema versions."""
        if not isinstance(payload, dict):
            raise ManifestError(
                f"manifest payload must be an object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != MANIFEST_SCHEMA_VERSION:
            raise ManifestError(
                f"manifest has schema version {version!r}; this package "
                f"reads version {MANIFEST_SCHEMA_VERSION}"
            )
        if not isinstance(payload.get("figure_id"), str) or not payload["figure_id"]:
            raise ManifestError("manifest lacks a figure_id")
        points = payload.get("points") or {}
        if not isinstance(points, dict):
            raise ManifestError("manifest 'points' must be an object")
        try:
            return cls(
                figure_id=payload["figure_id"],
                backend=payload.get("backend"),
                backend_version=payload.get("backend_version"),
                metric=str(payload.get("metric", "")),
                seed=int(payload.get("seed", 0)),
                seed_policy=str(payload.get("seed_policy", "")),
                preset=payload.get("preset"),
                plan=dict(payload.get("plan") or {}),
                points_total=int(points.get("total", 0)),
                points_from_journal=int(points.get("from_journal", 0)),
                points_from_cache=int(points.get("from_cache", 0)),
                new_evaluations=int(points.get("new_evaluations", 0)),
                retries=int(points.get("retries", 0)),
                failed_points=int(points.get("failed", 0)),
                kernel_stats=payload.get("kernel_stats"),
                metrics=dict(payload.get("metrics") or {}),
                trace=payload.get("trace"),
                wall_clock_seconds=float(payload.get("wall_clock_seconds", 0.0)),
                validation=payload.get("validation"),
                resilience=payload.get("resilience"),
                execution=payload.get("execution"),
                notes=[str(note) for note in payload.get("notes", [])],
                schema_version=MANIFEST_SCHEMA_VERSION,
                repro_version=str(payload.get("repro_version", "")),
                git_version=payload.get("git_version"),
                created_unix=float(payload.get("created_unix", 0.0)),
            )
        except (TypeError, ValueError) as exc:
            raise ManifestError(f"malformed manifest: {exc}") from exc


def manifest_path(directory: str, figure_id: str) -> str:
    """Where the manifest of one figure lives inside an archive dir."""
    return os.path.join(directory, f"{figure_id}.manifest.json")


def write_manifest(manifest: RunManifest, directory: str) -> str:
    """Atomically write one manifest next to its figure archive.

    Stamps ``created_unix`` and ``git_version`` if the caller did not.
    Temp file + fsync + rename, the same crash discipline as the
    figure archive and the result cache.
    """
    if not manifest.created_unix:
        manifest.created_unix = time.time()
    if manifest.git_version is None:
        manifest.git_version = git_describe()
    os.makedirs(directory, exist_ok=True)
    path = manifest_path(directory, manifest.figure_id)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{manifest.figure_id}.manifest.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(manifest.to_json_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return path


def load_manifest(path: str) -> RunManifest:
    """Read and schema-validate a manifest written by
    :func:`write_manifest`; raises :class:`ManifestError` naming the
    path on any problem."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ManifestError(f"cannot read manifest {path!r}: {exc}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ManifestError(f"manifest {path!r} is not valid JSON: {exc}") from exc
    try:
        return RunManifest.from_json_dict(payload)
    except ManifestError as exc:
        raise ManifestError(f"manifest {path!r}: {exc}") from exc


def render_manifest(manifest: RunManifest) -> str:
    """Human-readable report (the ``repro obs`` command's output)."""
    provenance = manifest.repro_version or "?"
    if manifest.git_version:
        provenance += f" ({manifest.git_version})"
    lines = [
        f"figure: {manifest.figure_id}",
        f"  backend: {manifest.backend or '(custom)'}"
        + (
            f" v{manifest.backend_version}"
            if manifest.backend_version is not None
            else ""
        ),
        f"  metric: {manifest.metric or '-'}   seed: {manifest.seed}"
        + (f"   preset: {manifest.preset}" if manifest.preset else ""),
        f"  repro: {provenance}",
        f"  points: {manifest.points_total} total = "
        f"{manifest.points_from_journal} journal + "
        f"{manifest.points_from_cache} cache + "
        f"{manifest.new_evaluations} evaluated"
        f" ({manifest.retries} retries, {manifest.failed_points} failed)",
        f"  wall clock: {manifest.wall_clock_seconds:.2f} s",
    ]
    if manifest.plan:
        plan_bits = ", ".join(
            f"{key}={value}" for key, value in sorted(manifest.plan.items())
            if value is not None
        )
        lines.append(f"  plan: {plan_bits}")
    if manifest.kernel_stats:
        events = manifest.kernel_stats.get("events", 0)
        eps = manifest.kernel_stats.get("events_per_sec", 0.0)
        kernel_line = f"  kernel: {events} events, {eps:,.0f} events/s"
        if manifest.kernel_stats.get("batch_steps"):
            width = manifest.kernel_stats.get("batch_width", 0)
            occupancy = manifest.kernel_stats.get("batch_occupancy", 0.0)
            fallback = manifest.kernel_stats.get("scalar_fallback_rate", 0.0)
            kernel_line += (
                f", batch width {width} "
                f"(occupancy {100.0 * occupancy:.1f}%, "
                f"scalar fallback {100.0 * fallback:.2f}%)"
            )
        lines.append(kernel_line)
    if manifest.trace:
        lines.append(
            f"  trace: {manifest.trace.get('written', 0)} events -> "
            f"{manifest.trace.get('path', '?')}"
        )
    if manifest.validation:
        verdict = "PASS" if manifest.validation.get("passed") else "FAIL"
        differential = manifest.validation.get("differential") or {}
        lines.append(
            f"  validation: {verdict} "
            f"(seed {manifest.validation.get('seed', '?')}, "
            f"{differential.get('cases', 0)} differential case(s), "
            f"{differential.get('disagreements', 0)} disagreement(s))"
        )
    if manifest.resilience:
        summary = manifest.resilience.get("summary") or {}
        by_kind = summary.get("by_kind") or {}
        shown = ", ".join(
            f"{kind}={count}" for kind, count in sorted(by_kind.items())
        )
        lines.append(
            f"  resilience: {len(manifest.resilience.get('events') or [])} "
            f"event(s)" + (f" ({shown})" if shown else "")
        )
        for stamp in summary.get("degraded") or []:
            lines.append(f"  degraded: {stamp}")
    if manifest.execution:
        execution = manifest.execution
        line = (
            f"  execution: {execution.get('executor', '?')} executor, "
            f"{execution.get('tasks_executed', 0)} task(s) executed"
        )
        if execution.get("coalesced"):
            line += f", {execution['coalesced']} coalesced"
        if execution.get("queue_depth_high_water"):
            line += (
                f", queue depth high-water "
                f"{execution['queue_depth_high_water']}"
            )
        if execution.get("orphans_requeued"):
            line += f", {execution['orphans_requeued']} orphan(s) requeued"
        if execution.get("timeouts"):
            line += f", {execution['timeouts']} timeout(s)"
        lines.append(line)
        retried = {
            index: count
            for index, count in (execution.get("attempts") or {}).items()
            if isinstance(count, int) and count > 1
        }
        if retried:
            shown = ", ".join(
                f"point {index}: {count} attempts"
                for index, count in sorted(
                    retried.items(), key=lambda item: int(item[0])
                )
            )
            lines.append(f"  attempts: {shown}")
    counters = manifest.metrics.get("counters") if manifest.metrics else None
    if counters:
        shown = ", ".join(
            f"{name}={value}" for name, value in sorted(counters.items()) if value
        )
        if shown:
            lines.append(f"  metrics: {shown}")
    for note in manifest.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def tenant_counters(counters: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Group ``tenant.<label>.<kind>`` counters by tenant label.

    The service layer accounts per tenant with flat counter names
    (``tenant.ci.submitted``, ``tenant.ci.evaluated`` ...); this
    regroups them into ``{label: {kind: value}}`` for rendering.
    Labels may themselves contain dots, so the *last* segment is the
    kind.
    """
    grouped: Dict[str, Dict[str, Any]] = {}
    for name, value in counters.items():
        if not name.startswith("tenant."):
            continue
        rest = name[len("tenant."):]
        label, _, kind = rest.rpartition(".")
        if not label or not kind:
            continue
        grouped.setdefault(label, {})[kind] = value
    return grouped


def render_metrics_snapshot(payload: Dict[str, Any]) -> str:
    """Human-readable report of one metrics snapshot (the
    ``--metrics-out`` / service ``*.metrics.json`` format).

    Renders counters, gauges and timing summaries, plus a per-tenant
    rollup of the service layer's ``tenant.<label>.<kind>`` counters
    (submitted / served_from_cache / evaluated / failed) when any are
    present.
    """
    lines: List[str] = []
    counters = payload.get("counters") or {}
    tenants = tenant_counters(counters)
    for section in ("counters", "gauges"):
        values = payload.get(section) or {}
        if values:
            lines.append(f"{section}:")
            for name, value in sorted(values.items()):
                lines.append(f"  {name:<40} {value}")
    timings = payload.get("timings") or {}
    if timings:
        lines.append("timings:")
        for name, summary in sorted(timings.items()):
            lines.append(
                f"  {name:<40} n={summary.get('count', 0)} "
                f"total={summary.get('total_seconds', 0.0):.3f}s "
                f"mean={summary.get('mean_seconds', 0.0):.4f}s"
            )
    if tenants:
        lines.append("tenants:")
        for label, kinds in sorted(tenants.items()):
            shown = ", ".join(
                f"{kind}={kinds[kind]}"
                for kind in (
                    "submitted", "served_from_cache", "evaluated", "failed"
                )
                if kind in kinds
            )
            extra = ", ".join(
                f"{kind}={value}" for kind, value in sorted(kinds.items())
                if kind not in (
                    "submitted", "served_from_cache", "evaluated", "failed"
                )
            )
            if extra:
                shown = f"{shown}, {extra}" if shown else extra
            lines.append(f"  {label:<20} {shown}")
    return "\n".join(lines)
