"""The ``cluster`` backend: the message-level cluster simulation.

Wraps :class:`repro.cluster.ClusterSimulator` — the per-node,
per-message ground truth for the coordination protocol — behind the
backend protocol. It is the only backend that *measures* coordination
time (QUIESCE broadcast to last READY) rather than assuming a law for
it, which is why the coordination-law cross-validation figure runs
here.

Per-node simulation costs memory and time linear in the node count,
so the capability flags advertise a ceiling; sweeps that exceed it
get a clear :class:`~repro.backends.base.UnsupportedParametersError`
up front instead of an hour-long surprise.
"""

from __future__ import annotations

from typing import Optional

from ..cluster import ClusterSimulator
from ..core.parameters import ModelParameters
from .base import (
    observed,
    BackendCapabilities,
    BaseBackend,
    EvaluationPlan,
    EvaluationResult,
    MEAN_COORDINATION_TIME,
    MetricValue,
    TOTAL_USEFUL_WORK,
    USEFUL_WORK_FRACTION,
    UnsupportedBackendError,
    non_flat_strategy,
)

__all__ = ["ClusterBackend"]

#: Largest node count the per-node simulator handles in reasonable time.
MAX_CLUSTER_NODES = 4096


class ClusterBackend(BaseBackend):
    """Single-trajectory message-level simulation of one cluster."""

    id = "cluster"
    backend_version = 1
    capabilities = BackendCapabilities(
        metrics=frozenset(
            {USEFUL_WORK_FRACTION, TOTAL_USEFUL_WORK, MEAN_COORDINATION_TIME}
        ),
        deterministic=False,
        exact=False,
        max_nodes=MAX_CLUSTER_NODES,
        description=(
            "message-level simulation of every node, I/O node and link "
            "(measures coordination time instead of assuming a law); "
            f"practical up to ~{MAX_CLUSTER_NODES} nodes"
        ),
    )

    def supports(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> Optional[str]:
        """Reject scales and model features the per-node simulator
        does not cover."""
        if params.n_nodes > MAX_CLUSTER_NODES:
            return (
                f"{params.n_nodes} nodes exceeds the per-node simulator's "
                f"practical ceiling of {MAX_CLUSTER_NODES}"
            )
        if params.timeout is not None:
            return "the cluster protocol does not implement timeout-abort rounds"
        if params.prob_correlated_failure > 0:
            return "correlated failure bursts are not modeled per node"
        if params.generic_correlated_coefficient > 0:
            return "generic correlated failures are not modeled per node"
        if params.recovery_distribution != "exponential":
            return (
                f"recovery distribution {params.recovery_distribution!r} "
                "is not implemented by the cluster simulator"
            )
        spec = non_flat_strategy(plan)
        if spec is not None:
            return (
                f"the message-level protocol implements only the flat "
                f"coordinated checkpoint; strategy {spec!r} needs a "
                f"sampled SAN backend (san-sim)"
            )
        return None

    @observed
    def evaluate(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> EvaluationResult:
        """Run one trajectory of ``plan.duration`` (falling back to
        ``plan.simulation.observation``) seeded with ``plan.seed``."""
        spec = non_flat_strategy(plan)
        if spec is not None:
            raise UnsupportedBackendError(
                f"backend {self.id!r} cannot run: the message-level "
                f"protocol implements only the flat coordinated "
                f"checkpoint; strategy {spec!r} needs a sampled SAN "
                f"backend (san-sim)"
            )
        self.check(params, plan)
        duration = plan.duration or plan.simulation.observation
        outcome = ClusterSimulator(params, seed=plan.seed).run(duration=duration)
        uwf = outcome.useful_work_fraction
        metrics = {
            USEFUL_WORK_FRACTION: MetricValue(mean=uwf),
            TOTAL_USEFUL_WORK: MetricValue(mean=uwf * params.n_processors),
            MEAN_COORDINATION_TIME: MetricValue(
                mean=outcome.mean_coordination_time
            ),
        }
        details = {
            "duration": duration,
            "rounds": float(outcome.rounds),
            "aborts": float(outcome.aborts),
            "commits": float(outcome.commits),
            "failures": float(outcome.failures),
            "io_failures": float(outcome.io_failures),
            "recoveries": float(outcome.recoveries),
            "events": float(outcome.events),
        }
        return self.result(metrics=metrics, details=details)
