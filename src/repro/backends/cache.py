"""Content-addressed cache of evaluation results.

A sweep point's value is fully determined by ``(backend, params,
plan)`` — the determinism contract the checkpoint journal (PR 1)
already relies on. This cache exploits that across *runs*: the key is
a digest of the canonical JSON of the request (including the result
schema version and the backend's own version, so numerics changes
invalidate stale entries), and the value is the serialised
:class:`~repro.backends.base.EvaluationResult`.

Layout: ``<root>/<backend_id>/<digest[:2]>/<digest>.json``, one file
per evaluated request, written atomically (temp file + fsync +
rename, the same discipline as the journal and the figure archive).
The two-hex-character fan-out keeps any one directory small under a
long-lived evaluation service; entries written under the older flat
layout (``<root>/<backend_id>/<digest>.json``) are migrated into
their shard transparently on first lookup. A corrupt, missing, or
schema-mismatched entry is a cache miss, never an error.

For a long-lived compute tier the cache also supports an explicit
eviction pass: :meth:`ResultCache.prune` removes the least-recently
used entries (by atime, falling back to mtime where the filesystem
does not track atime) until the cache fits a byte budget —
``repro cache prune --max-bytes`` from the CLI.

Opening a cache also sweeps orphaned ``.cache-*.json.tmp`` files: a
worker killed mid-``put`` (a real crash, a deadline kill, an injected
fault) leaves its temp file behind, and without a janitor those
orphans accumulate forever. Only stale temp files (older than
:data:`TMP_SWEEP_AGE_SECONDS`) are removed, so a concurrent writer's
in-flight temp file is never yanked out from under it.
"""

from __future__ import annotations

import glob
import hashlib
import os
import tempfile
import time
from typing import Dict, Optional, Set

from ..core.parameters import ModelParameters
from ..obs import metrics
from .base import (
    Backend,
    EvaluationPlan,
    EvaluationResult,
    SCHEMA_VERSION,
    SchemaMismatchError,
    plan_key_dict,
)
from .canonical import canonical_json

__all__ = [
    "CACHE_KEY_VERSION",
    "TMP_SWEEP_AGE_SECONDS",
    "ResultCache",
    "request_digest",
]

#: Version of the key-derivation scheme itself. Bumped to 2 when the
#: lossy ``json.dumps(..., default=str)`` encoder was replaced by the
#: strict canonical encoder: every digest changes, so entries written
#: under the collision-prone scheme are invalidated rather than reused.
CACHE_KEY_VERSION = 2

#: Minimum age (seconds since last mtime) before an orphaned
#: ``.cache-*.json.tmp`` file is considered abandoned and swept.
TMP_SWEEP_AGE_SECONDS = 60.0

#: Cache roots already swept by this process — the janitor is an
#: init-time hygiene pass, not a recurring cost on every cache handle.
_SWEPT_ROOTS: Set[str] = set()


def request_digest(backend: Backend, params: ModelParameters,
                   plan: EvaluationPlan) -> str:
    """Digest of the canonical evaluation request.

    Everything that can change the value is hashed: the result schema
    version, the backend id and version, every model parameter, and
    the whole evaluation plan (metrics, simulation effort, seed,
    duration). This is the one key-derivation recipe for the whole
    stack: :class:`ResultCache` files its entries under it and
    :class:`~repro.exec.EvaluationTask` deduplicates on it, so a queue
    coalescing two submissions is exactly the set of requests the
    cache would have served from one entry.
    """
    identity = {
        "schema": SCHEMA_VERSION,
        "key_version": CACHE_KEY_VERSION,
        "backend": backend.id,
        "backend_version": backend.backend_version,
    }
    identity.update(plan_key_dict(params, plan))
    canonical = canonical_json(identity)
    return hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=16
    ).hexdigest()


class ResultCache:
    """Filesystem cache keyed by the canonical evaluation request."""

    def __init__(self, root: str) -> None:
        """Cache rooted at ``root`` (created lazily on first write).

        Sweeps stale ``.cache-*.json.tmp`` orphans under ``root`` the
        first time this process opens a cache there; the count of
        removed files is published as the ``cache.tmp_swept`` counter.
        """
        self.root = root
        # realpath, not abspath: the same root reached through a
        # symlink or a different relative spelling must be tracked as
        # ONE root, or it would be swept twice (or, once recorded
        # under an alias, never again under its real name).
        canonical = os.path.realpath(root)
        if canonical not in _SWEPT_ROOTS:
            _SWEPT_ROOTS.add(canonical)
            self._sweep_orphaned_tmp()

    def _sweep_orphaned_tmp(self) -> None:
        """Remove abandoned temp files left by killed writers."""
        swept = 0
        now = time.time()
        escaped = glob.escape(self.root)
        patterns = (
            # Sharded layout: <root>/<backend>/<digest[:2]>/.cache-*.tmp
            os.path.join(escaped, "*", "*", ".cache-*.json.tmp"),
            # Legacy flat layout, still swept during migration.
            os.path.join(escaped, "*", ".cache-*.json.tmp"),
        )
        for pattern in patterns:
            for tmp_path in glob.glob(pattern):
                try:
                    age = now - os.path.getmtime(tmp_path)
                    if age >= TMP_SWEEP_AGE_SECONDS:
                        os.unlink(tmp_path)
                        swept += 1
                except OSError:
                    continue  # raced with a writer or another janitor: fine
        if swept:
            metrics.registry().counter("cache.tmp_swept").inc(swept)

    def key(self, backend: Backend, params: ModelParameters,
            plan: EvaluationPlan) -> str:
        """Digest of the canonical request (see :func:`request_digest`)."""
        return request_digest(backend, params, plan)

    def path(self, backend: Backend, params: ModelParameters,
             plan: EvaluationPlan) -> str:
        """Where the entry for this request lives (existing or not)."""
        digest = self.key(backend, params, plan)
        return self.entry_path(backend.id, digest)

    def entry_path(self, backend_id: str, digest: str) -> str:
        """The sharded location of one digest's entry file."""
        return os.path.join(
            self.root, backend_id, digest[:2], f"{digest}.json"
        )

    def _migrate_flat_entry(self, backend_id: str, digest: str,
                            sharded: str) -> bool:
        """Move a pre-shard flat entry into its fan-out directory.

        Returns True when an entry was migrated (the sharded path now
        exists). Losing the rename race to another process migrating
        the same entry is fine — the file lands in the same place.
        """
        flat = os.path.join(self.root, backend_id, f"{digest}.json")
        if not os.path.isfile(flat):
            return False
        try:
            os.makedirs(os.path.dirname(sharded), exist_ok=True)
            os.replace(flat, sharded)
        except OSError:
            return os.path.isfile(sharded)
        metrics.registry().counter("cache.migrated_entries").inc()
        return True

    def get(self, backend: Backend, params: ModelParameters,
            plan: EvaluationPlan) -> Optional[EvaluationResult]:
        """The cached result, or ``None`` on any kind of miss.

        Corruption and schema mismatches are deliberate misses: the
        caller re-evaluates and overwrites the bad entry. An entry
        written under the pre-shard flat layout is transparently moved
        into its shard and served.
        """
        digest = self.key(backend, params, plan)
        path = self.entry_path(backend.id, digest)
        reg = metrics.registry()
        if not os.path.isfile(path):
            self._migrate_flat_entry(backend.id, digest, path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            reg.counter("cache.misses").inc()
            return None
        try:
            result = EvaluationResult.from_json(text)
        except (SchemaMismatchError, ValueError, KeyError, TypeError):
            reg.counter("cache.misses").inc()
            reg.counter("cache.corrupt_entries").inc()
            return None
        if result.backend != backend.id:
            reg.counter("cache.misses").inc()
            return None
        reg.counter("cache.hits").inc()
        return result

    def put(self, backend: Backend, params: ModelParameters,
            plan: EvaluationPlan, result: EvaluationResult) -> str:
        """Durably store a result; returns the entry path.

        Atomic (temp file, fsync, rename): a crash mid-write leaves
        either the old entry or the new one, never a torn file that
        would later read as a miss-with-warning.
        """
        path = self.path(backend, params, plan)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".cache-", suffix=".json.tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(result.to_json())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        metrics.registry().counter("cache.puts").inc()
        return path

    def _entries(self):
        """Every completed entry file under the root (both layouts),
        as ``(path, last_use_unix, size_bytes)`` tuples."""
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not name.endswith(".json") or name.startswith("."):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue  # raced with a concurrent prune/writer
                last_use = max(stat.st_atime, stat.st_mtime)
                found.append((path, last_use, stat.st_size))
        return found

    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-used entries down to a byte budget.

        Entries are ranked by ``max(atime, mtime)`` — atime is the
        read clock where the filesystem tracks it (relatime mounts
        update it on cache hits), mtime the floor on mounts that do
        not — and removed oldest-first until the cache fits
        ``max_bytes``. Emptied shard directories are removed. Returns
        a summary dict (entries/bytes before, removed, after);
        removals are also published as the ``cache.pruned_entries`` /
        ``cache.pruned_bytes`` counters.

        Concurrency: eviction is safe against live readers and
        writers — a reader losing its entry sees an ordinary miss and
        re-evaluates; an in-flight atomic write is untouched (temp
        files are not entries).
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self._entries()
        total = sum(size for _, _, size in entries)
        summary = {
            "entries_before": len(entries),
            "bytes_before": total,
            "entries_removed": 0,
            "bytes_removed": 0,
            "bytes_after": total,
        }
        if total <= max_bytes:
            return summary
        for path, _last_use, size in sorted(entries, key=lambda e: e[1]):
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue  # raced with a reader's migration or another prune
            total -= size
            summary["entries_removed"] += 1
            summary["bytes_removed"] += size
            shard = os.path.dirname(path)
            try:
                if os.path.realpath(shard) != os.path.realpath(self.root):
                    os.rmdir(shard)  # only succeeds when emptied
            except OSError:
                pass
        summary["bytes_after"] = total
        reg = metrics.registry()
        if summary["entries_removed"]:
            reg.counter("cache.pruned_entries").inc(summary["entries_removed"])
            reg.counter("cache.pruned_bytes").inc(summary["bytes_removed"])
        return summary
