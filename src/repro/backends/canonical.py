"""Strict canonical JSON encoding for cache identities.

The result cache keys entries by a hash of the evaluation request.
The old implementation used ``json.dumps(..., default=str)``, which
silently stringifies anything JSON does not know: a numpy ``int64``
became ``"7"`` (colliding with the *string* ``"7"`` and missing
against the *int* ``7``), a NaN serialized as the non-standard token
``NaN``, and any stray object fell back to its ``repr``. Two distinct
requests could collide; two identical requests could miss.

This module replaces that with a closed-world encoder:

* ``None``, ``bool``, ``str``, ``int`` pass through.
* floats must be finite — NaN and ±inf raise :class:`ValueError`
  (an evaluation request containing them is a bug upstream, not a
  cache key); ``-0.0`` normalizes to ``0.0`` so the two equal floats
  hash identically.
* numpy scalars (when numpy is present) normalize via ``.item()`` to
  the plain Python value they equal.
* mappings require string keys and are emitted with sorted keys;
  tuples and lists both canonicalize to JSON arrays (they compare
  equal as request parameters, so they must hash equally).
* anything else raises :class:`TypeError` naming the offending type —
  loudly, instead of a silent ``str()`` collision.
"""

from __future__ import annotations

import json
import math
from typing import Any, Mapping, Sequence

try:  # numpy is an optional normalization source, not a dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

__all__ = ["canonicalize", "canonical_json"]


def canonicalize(obj: Any, _path: str = "$") -> Any:
    """Normalize ``obj`` into plain JSON types, strictly.

    Raises ``ValueError`` for non-finite floats and ``TypeError`` for
    any type outside the closed world above; error messages include a
    JSONPath-ish location so a bad request field is easy to find.
    """
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if _np is not None and isinstance(obj, _np.generic):
        # np.float64 subclasses float but np.int64 does NOT subclass
        # int; .item() maps both onto the plain value they equal.
        return canonicalize(obj.item(), _path)
    if isinstance(obj, int):
        return obj
    if isinstance(obj, float):
        if not math.isfinite(obj):
            raise ValueError(
                f"non-finite float {obj!r} at {_path} cannot be part of a "
                "cache identity; reject it before building the request"
            )
        return obj + 0.0 if obj == 0.0 else obj  # -0.0 -> 0.0
    if isinstance(obj, Mapping):
        normalized = {}
        for key in obj:
            if not isinstance(key, str):
                raise TypeError(
                    f"mapping key {key!r} at {_path} is "
                    f"{type(key).__name__}, not str"
                )
            normalized[key] = canonicalize(obj[key], f"{_path}.{key}")
        return {key: normalized[key] for key in sorted(normalized)}
    if isinstance(obj, (list, tuple)):
        return [
            canonicalize(item, f"{_path}[{index}]")
            for index, item in enumerate(obj)
        ]
    if isinstance(obj, Sequence) and not isinstance(obj, (bytes, bytearray)):
        return [
            canonicalize(item, f"{_path}[{index}]")
            for index, item in enumerate(obj)
        ]
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__} at {_path}: cache "
        "identities accept only None/bool/int/finite float/str, "
        "mappings with str keys, and sequences thereof"
    )


def canonical_json(obj: Any) -> str:
    """The unique JSON text of ``obj``'s canonical form.

    Sorted keys, no whitespace, ``allow_nan=False`` as a second line
    of defence: equal requests produce byte-identical text.
    """
    return json.dumps(
        canonicalize(obj),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
