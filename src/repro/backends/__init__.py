"""Unified evaluation backends.

One protocol — :class:`~repro.backends.base.Backend`, with
``evaluate(params, plan) -> EvaluationResult`` — over the four ways
this repository evaluates a checkpoint-system configuration:

``san-sim``
    Stochastic discrete-event simulation of the full SAN model
    (incremental kernel); ``san-sim-full`` is the same simulation on
    the full-rescan reference kernel (bit-identical per seed);
    ``san-sim-batched`` advances whole replication batches in numpy
    lockstep (statistically equivalent, not bit-identical).
``ctmc``
    Exact steady state of the exponential checkpoint chain via the
    state-space generator.
``cluster``
    Message-level per-node simulation of the coordination protocol.
``analytical``
    Renewal-theory and order-statistic closed forms.

Importing this package registers the default backends; resolve them
with :func:`~repro.backends.registry.get_backend`. See
``docs/ARCHITECTURE.md`` for the full picture (registry, capability
flags, result schema, result cache).
"""

from __future__ import annotations

from .base import (
    Backend,
    BackendCapabilities,
    BackendError,
    COORDINATION_ONLY_USEFUL_FRACTION,
    DERIVED_METRICS,
    EvaluationPlan,
    EvaluationResult,
    MEAN_COORDINATION_TIME,
    MetricValue,
    SCHEMA_VERSION,
    SchemaMismatchError,
    TOTAL_USEFUL_WORK,
    USEFUL_WORK_FRACTION,
    UnknownBackendError,
    UnsupportedBackendError,
    UnsupportedMetricError,
    UnsupportedParametersError,
    non_flat_strategy,
)
from .cache import ResultCache
from .registry import (
    all_backends,
    backend_ids,
    get_backend,
    register,
    unregister,
)
from .analytical import AnalyticalBackend
from .cluster import ClusterBackend
from .ctmc import CTMCBackend
from .san_sim import SanSimulationBackend

__all__ = [
    "SCHEMA_VERSION",
    "USEFUL_WORK_FRACTION",
    "TOTAL_USEFUL_WORK",
    "MEAN_COORDINATION_TIME",
    "COORDINATION_ONLY_USEFUL_FRACTION",
    "DERIVED_METRICS",
    "Backend",
    "BackendCapabilities",
    "BackendError",
    "UnknownBackendError",
    "UnsupportedBackendError",
    "non_flat_strategy",
    "UnsupportedMetricError",
    "UnsupportedParametersError",
    "SchemaMismatchError",
    "MetricValue",
    "EvaluationPlan",
    "EvaluationResult",
    "ResultCache",
    "register",
    "unregister",
    "get_backend",
    "backend_ids",
    "all_backends",
    "SanSimulationBackend",
    "CTMCBackend",
    "ClusterBackend",
    "AnalyticalBackend",
]


def _register_defaults() -> None:
    """Idempotently register the stock backends."""
    from . import registry as _registry

    defaults = (
        SanSimulationBackend(),
        SanSimulationBackend(id="san-sim-full", kernel="full"),
        SanSimulationBackend(id="san-sim-batched", kernel="batched"),
        CTMCBackend(),
        ClusterBackend(),
        AnalyticalBackend(),
    )
    for backend in defaults:
        if backend.id not in _registry._REGISTRY:
            register(backend)


_register_defaults()
