"""Backend protocol, evaluation plan/result schema, and errors.

An *evaluation backend* answers one question — "what are the metrics
of this configuration?" — through one interface::

    backend = get_backend("san-sim")
    result = backend.evaluate(params, EvaluationPlan(metrics=("useful_work_fraction",)))
    print(result.metric("useful_work_fraction").mean)

The paper validates its model three independent ways (stochastic SAN
simulation, exact solution of small sub-models, and a message-level
cluster simulation), plus renewal-theory closed forms; each of those
paths is a backend registered in :mod:`repro.backends.registry`, and
everything downstream (sweeps, figures, the CLI, the result cache)
speaks only this protocol.

The result schema is versioned: every :class:`EvaluationResult`
carries ``schema_version`` (:data:`SCHEMA_VERSION`) and the package
version, and deserialisation rejects payloads written under another
schema with :class:`SchemaMismatchError` instead of silently
misreading them.
"""

from __future__ import annotations

import functools
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

try:  # Protocol is 3.8+; keep the import local to one place.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from .._version import __version__
from ..core.parameters import ModelParameters
from ..core.simulation import SimulationPlan
from ..obs import metrics as _obs_metrics

__all__ = [
    "observed",
    "SCHEMA_VERSION",
    "USEFUL_WORK_FRACTION",
    "TOTAL_USEFUL_WORK",
    "MEAN_COORDINATION_TIME",
    "COORDINATION_ONLY_USEFUL_FRACTION",
    "DERIVED_METRICS",
    "BackendError",
    "UnknownBackendError",
    "UnsupportedMetricError",
    "UnsupportedParametersError",
    "UnsupportedBackendError",
    "SchemaMismatchError",
    "MetricValue",
    "EvaluationPlan",
    "EvaluationResult",
    "BackendCapabilities",
    "Backend",
    "BaseBackend",
    "non_flat_strategy",
]

#: Version of the :class:`EvaluationResult` JSON schema. Bump whenever
#: a serialised field changes meaning; loaders reject other versions.
SCHEMA_VERSION = 1

#: The paper's headline metric: fraction of wall-clock time spent on
#: useful (checkpoint-surviving) computation.
USEFUL_WORK_FRACTION = "useful_work_fraction"
#: ``useful_work_fraction`` scaled by the processor count (job units).
TOTAL_USEFUL_WORK = "total_useful_work"
#: Mean QUIESCE-broadcast -> all-READY latency (seconds).
MEAN_COORDINATION_TIME = "mean_coordination_time"
#: Figure 5's closed form: UWF with coordination as the only overhead.
COORDINATION_ONLY_USEFUL_FRACTION = "coordination_only_useful_fraction"

#: Metrics derived by scaling another metric. A backend that can
#: produce the base metric can produce the derived one; the sweep
#: runner performs the scaling with the point's own processor count.
DERIVED_METRICS: Dict[str, str] = {TOTAL_USEFUL_WORK: USEFUL_WORK_FRACTION}


def observed(evaluate):
    """Decorator for ``Backend.evaluate`` implementations: counts the
    call as ``backend.<id>.evaluations`` and times it into
    ``backend.<id>.evaluate_seconds`` in the process metrics registry.
    Failed evaluations are additionally counted as
    ``backend.<id>.errors`` (and still timed)."""

    @functools.wraps(evaluate)
    def wrapper(self, params, plan):
        reg = _obs_metrics.registry()
        reg.counter(f"backend.{self.id}.evaluations").inc()
        try:
            with reg.timer(f"backend.{self.id}.evaluate_seconds"):
                return evaluate(self, params, plan)
        except Exception:
            reg.counter(f"backend.{self.id}.errors").inc()
            raise

    return wrapper


class BackendError(Exception):
    """Base class of every backend-layer error."""


class UnknownBackendError(BackendError, ValueError):
    """No backend with the requested id is registered."""


class UnsupportedMetricError(BackendError, ValueError):
    """The backend cannot produce the requested metric.

    Subclasses :class:`ValueError` so call sites that historically
    validated metric names with ``ValueError`` keep working.
    """


class UnsupportedParametersError(BackendError, ValueError):
    """The backend cannot evaluate the given configuration (a model
    feature it does not implement, or a scale it cannot reach)."""


class UnsupportedBackendError(BackendError, RuntimeError):
    """The backend is registered but cannot run in this environment
    (a missing optional dependency, e.g. numpy for the batched
    kernel). Registration and ``repro backends`` listing still work;
    only evaluation refuses, naming what is missing."""


class SchemaMismatchError(BackendError, ValueError):
    """A serialised result was written under a different schema
    version than this package understands."""


@dataclass(frozen=True)
class MetricValue:
    """One reported metric: a point estimate and its 95% half-width.

    Exact and closed-form backends report ``half_width == 0.0``.
    """

    mean: float
    half_width: float = 0.0


@dataclass(frozen=True)
class EvaluationPlan:
    """What to evaluate and how hard to work at it.

    Attributes
    ----------
    metrics:
        The metric names the caller needs (the first one is the
        sweep's y value). Backends may compute more than requested
        but must cover every listed name.
    simulation:
        Effort knobs for simulation backends (warmup, observation
        window, replications, confidence, kernel). Closed-form
        backends ignore it.
    seed:
        Root random seed for stochastic backends; ignored by exact
        and closed-form backends.
    duration:
        Observed window for the single-trajectory cluster backend.
        ``None`` falls back to ``simulation.observation``.
    """

    metrics: Tuple[str, ...] = (USEFUL_WORK_FRACTION,)
    simulation: SimulationPlan = field(default_factory=SimulationPlan)
    seed: int = 0
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "metrics", tuple(self.metrics))
        if not self.metrics:
            raise ValueError("an evaluation plan needs at least one metric")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")

    def with_seed(self, seed: int) -> "EvaluationPlan":
        """The same plan rooted at a different seed."""
        return replace(self, seed=seed)


@dataclass
class EvaluationResult:
    """What a backend produced for one configuration.

    The JSON form (:meth:`to_json` / :meth:`from_json`) round-trips
    exactly and is stamped with the schema version, the package
    version and the producing backend, so cached results remain
    attributable and version-checkable across runs.
    """

    backend: str
    metrics: Dict[str, MetricValue] = field(default_factory=dict)
    details: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    backend_version: int = 1
    schema_version: int = SCHEMA_VERSION
    repro_version: str = __version__

    def metric(self, name: str) -> MetricValue:
        """The named metric, or :class:`UnsupportedMetricError`."""
        try:
            return self.metrics[name]
        except KeyError:
            raise UnsupportedMetricError(
                f"backend {self.backend!r} did not produce metric {name!r}; "
                f"available: {', '.join(sorted(self.metrics)) or '(none)'}"
            ) from None

    def to_json_dict(self) -> Dict[str, object]:
        """A plain-JSON representation (stable key order via dumps)."""
        return {
            "schema_version": self.schema_version,
            "repro_version": self.repro_version,
            "backend": self.backend,
            "backend_version": self.backend_version,
            "metrics": {
                name: {"mean": value.mean, "half_width": value.half_width}
                for name, value in self.metrics.items()
            },
            "details": dict(self.details),
            "notes": list(self.notes),
        }

    def to_json(self) -> str:
        """Serialise to a canonical JSON string."""
        return json.dumps(self.to_json_dict(), sort_keys=True)

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "EvaluationResult":
        """Rebuild a result, rejecting foreign schema versions."""
        if not isinstance(payload, dict):
            raise SchemaMismatchError(
                f"evaluation result payload must be an object, "
                f"got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchemaMismatchError(
                f"evaluation result has schema version {version!r}; this "
                f"package reads version {SCHEMA_VERSION}"
            )
        metrics = {
            str(name): MetricValue(
                mean=float(value["mean"]),
                half_width=float(value.get("half_width", 0.0)),
            )
            for name, value in dict(payload.get("metrics", {})).items()
        }
        return cls(
            backend=str(payload["backend"]),
            metrics=metrics,
            details={
                str(k): float(v)
                for k, v in dict(payload.get("details", {})).items()
            },
            notes=[str(note) for note in payload.get("notes", [])],
            backend_version=int(payload.get("backend_version", 1)),
            schema_version=SCHEMA_VERSION,
            repro_version=str(payload.get("repro_version", __version__)),
        )

    @classmethod
    def from_json(cls, text: str) -> "EvaluationResult":
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise SchemaMismatchError(
                f"evaluation result is not valid JSON: {exc}"
            ) from exc
        return cls.from_json_dict(payload)


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can compute, declared up front.

    Attributes
    ----------
    metrics:
        The metric names the backend can produce directly (derived
        metrics in :data:`DERIVED_METRICS` count via their base).
    deterministic:
        ``True`` when the result does not depend on a random seed
        (exact solves and closed forms).
    exact:
        ``True`` when the result is exact for the sub-model the
        backend solves (as opposed to statistical or approximate).
    max_nodes:
        Largest node count the backend handles in reasonable time;
        ``None`` means unbounded.
    description:
        One-line human description for the CLI listing.
    """

    metrics: frozenset
    deterministic: bool = False
    exact: bool = False
    max_nodes: Optional[int] = None
    description: str = ""

    def supports_metric(self, metric: str) -> bool:
        """Whether the backend can produce ``metric``, directly or as
        a derived metric of something it produces."""
        return DERIVED_METRICS.get(metric, metric) in self.metrics

    @property
    def kind(self) -> str:
        """Statistical nature of the backend's numbers, for the
        validation layer's oracle hierarchy:

        * ``"exact"`` — exact for the sub-model it solves; usable as a
          one-sample oracle (zero sampling error).
        * ``"closed-form"`` — deterministic but approximate (renewal
          closed forms); also zero sampling error, weaker authority.
        * ``"sampled"`` — statistical output; comparisons need
          two-sample machinery and honor interval validity.
        """
        if self.exact:
            return "exact"
        if self.deterministic:
            return "closed-form"
        return "sampled"


@runtime_checkable
class Backend(Protocol):
    """The evaluation-backend protocol.

    A backend is identified by ``id`` (the registry key and CLI name),
    versioned by ``backend_version`` (bumped when its numerics
    change, which invalidates cached results), and described by
    ``capabilities``.
    """

    id: str
    backend_version: int
    capabilities: BackendCapabilities

    def evaluate(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> EvaluationResult:
        """Evaluate one configuration; raises a
        :class:`BackendError` subclass when it cannot."""
        ...

    def supports(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> Optional[str]:
        """``None`` when the configuration is evaluable, else a
        human-readable reason it is not."""
        ...


class BaseBackend:
    """Shared plumbing for the concrete backends.

    Subclasses set ``id``, ``backend_version`` and ``capabilities``
    and implement :meth:`evaluate`; :meth:`check` performs the common
    metric/parameter validation they call first.
    """

    id: str = "abstract"
    backend_version: int = 1
    capabilities: BackendCapabilities = BackendCapabilities(metrics=frozenset())

    def supports(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> Optional[str]:
        """Default: every configuration is evaluable."""
        return None

    def evaluate(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> EvaluationResult:
        """Concrete backends must implement this."""
        raise NotImplementedError

    def check(self, params: ModelParameters, plan: EvaluationPlan) -> None:
        """Validate the request; raises on unknown metrics or
        unsupported configurations."""
        for metric in plan.metrics:
            if not self.capabilities.supports_metric(metric):
                raise UnsupportedMetricError(
                    f"backend {self.id!r} cannot produce metric {metric!r}; "
                    f"it supports: {', '.join(sorted(self.capabilities.metrics))}"
                )
        reason = self.supports(params, plan)
        if reason is not None:
            raise UnsupportedParametersError(
                f"backend {self.id!r} cannot evaluate this configuration: "
                f"{reason}"
            )

    def result(self, **kwargs) -> EvaluationResult:
        """An :class:`EvaluationResult` pre-stamped with this
        backend's identity and version."""
        return EvaluationResult(
            backend=self.id, backend_version=self.backend_version, **kwargs
        )


def plan_key_dict(params: ModelParameters, plan: EvaluationPlan) -> Dict[str, object]:
    """The canonical JSON-able identity of one evaluation request
    (used by the result cache and anything else that hashes requests).
    """
    return {"params": asdict(params), "plan": asdict(plan)}


def non_flat_strategy(plan: EvaluationPlan) -> Optional[str]:
    """The plan's checkpointing-strategy spec when it is *not* the
    flat reference protocol, else ``None``.

    Backends whose model implements only the flat coordinated
    checkpoint (the exact chain, the closed forms, the message-level
    cluster protocol) veto non-flat strategies with this — a
    ``supports`` reason for sweeps to skip on, and an
    :class:`UnsupportedBackendError` on the evaluate path, the same
    discipline as the batched kernel's numpy veto.
    """
    spec = plan.simulation.strategy
    return None if spec == "flat" else spec
