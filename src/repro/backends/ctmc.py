"""The ``ctmc`` backend: exact steady state of an exponential sub-model.

The full checkpoint model mixes deterministic latencies with a
continuous work ledger, so it has no tractable CTMC. This backend
solves the *exponential abstraction* the paper uses for exact
cross-checks (and that ``tests/integration`` validates three ways): a
three-state chain

    executing --(trigger)--> checkpointing --(done)--> executing

with failures from both states into ``recovering`` and an exponential
repair back to ``executing``. All rates are derived from the same
:class:`~repro.core.parameters.ModelParameters` the other backends
consume — mean checkpoint interval, mean blocking overhead (broadcast
+ coordination + dump, shared with the ``analytical`` backend), the
scaled system failure rate, and the MTTR.

The state probabilities are exact for the abstraction; the useful-work
fraction adds a first-order rollback correction (work since the last
commit is lost on failure), documented on :meth:`CTMCBackend.evaluate`.
"""

from __future__ import annotations

from typing import Optional

from ..core.parameters import ModelParameters
from ..san import (
    Arc,
    Case,
    Exponential,
    SANModel,
    StateSpaceGenerator,
    TimedActivity,
)
from .analytical import blocking_checkpoint_overhead
from .base import (
    observed,
    BackendCapabilities,
    BaseBackend,
    EvaluationPlan,
    EvaluationResult,
    MetricValue,
    TOTAL_USEFUL_WORK,
    USEFUL_WORK_FRACTION,
    UnsupportedBackendError,
    non_flat_strategy,
)

__all__ = ["CTMCBackend"]

#: Place names of the sub-model's three macro states.
_EXECUTING = "executing"
_CHECKPOINTING = "checkpointing"
_RECOVERING = "recovering"


def _transition(name: str, rate: float, source, target) -> TimedActivity:
    """One exponential state transition of the chain."""
    return TimedActivity(
        name,
        Exponential(rate),
        input_arcs=[Arc(source)],
        cases=[Case(output_arcs=[Arc(target)])],
    )


class CTMCBackend(BaseBackend):
    """Exact steady-state solve of the exponential checkpoint chain."""

    id = "ctmc"
    backend_version = 1
    capabilities = BackendCapabilities(
        metrics=frozenset(
            {
                USEFUL_WORK_FRACTION,
                TOTAL_USEFUL_WORK,
                "frac_execution",
                "frac_checkpointing",
                "frac_recovering",
            }
        ),
        deterministic=True,
        exact=True,
        max_nodes=None,
        description=(
            "exact steady state of the exponential checkpoint chain "
            "(executing/checkpointing/recovering) via the SAN state-space "
            "generator; no timeouts, correlated failures or reboots"
        ),
    )

    def supports(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> Optional[str]:
        """The chain exists only where every sojourn is exponential
        and the state space stays three macro states."""
        if params.timeout is not None:
            return "timeout-abort rounds add non-exponential coordination states"
        if params.prob_correlated_failure > 0:
            return "correlated failure bursts need the full model's window states"
        if (
            params.generic_correlated_coefficient > 0
            and params.generic_correlated_mode != "uniform"
        ):
            return "modulated generic correlated failures add hidden phases"
        if params.recovery_distribution != "exponential":
            return (
                f"recovery distribution {params.recovery_distribution!r} "
                "is not exponential"
            )
        if params.recovery_failure_threshold is not None:
            return "reboot thresholds add a rebooting state to the chain"
        spec = non_flat_strategy(plan)
        if spec is not None:
            return (
                f"the exact chain models only the flat coordinated "
                f"checkpoint protocol; strategy {spec!r} needs a sampled "
                f"SAN backend (san-sim)"
            )
        return None

    def build_submodel(self, params: ModelParameters) -> SANModel:
        """The three-state exponential chain as a SAN.

        Public so the agreement tests can simulate the *same* chain
        they solve (the strongest form of cross-validation: identical
        structure, independent evaluation machinery).
        """
        interval_rate = 1.0 / params.checkpoint_interval
        overhead = blocking_checkpoint_overhead(params)
        done_rate = 1.0 / overhead
        failure_rate = (
            params.compute_failure_rate * params.generic_uniform_multiplier
        )
        repair_rate = 1.0 / params.mttr

        model = SANModel("ctmc_checkpoint_chain")
        executing = model.add_place(_EXECUTING, initial=1)
        checkpointing = model.add_place(_CHECKPOINTING)
        recovering = model.add_place(_RECOVERING)
        model.add_activity(
            _transition("trigger", interval_rate, executing, checkpointing)
        )
        model.add_activity(
            _transition("ckpt_done", done_rate, checkpointing, executing)
        )
        model.add_activity(
            _transition("fail_exec", failure_rate, executing, recovering)
        )
        model.add_activity(
            _transition("fail_ckpt", failure_rate, checkpointing, recovering)
        )
        model.add_activity(
            _transition("repair", repair_rate, recovering, executing)
        )
        return model

    @observed
    def evaluate(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> EvaluationResult:
        """Solve the chain exactly.

        State probabilities are exact. The useful-work fraction
        subtracts the expected rollback loss to first order: a failure
        while executing discards on average half an interval of work,
        a failure while checkpointing discards a whole interval (the
        dump in progress has not committed), so

            ``UWF = P_exec - lambda * (P_exec * tau/2 + P_ckpt * tau)``

        clipped at zero. The correction is second-order small whenever
        the chain is a faithful abstraction (failures rare within one
        interval), which is exactly where this backend is useful.
        """
        spec = non_flat_strategy(plan)
        if spec is not None:
            raise UnsupportedBackendError(
                f"backend {self.id!r} cannot run: the exact chain models "
                f"only the flat coordinated checkpoint protocol; strategy "
                f"{spec!r} needs a sampled SAN backend (san-sim)"
            )
        self.check(params, plan)
        space = StateSpaceGenerator(self.build_submodel(params)).generate()
        solution = space.steady_state()
        p_exec = solution.probability_of(lambda m: m[_EXECUTING] == 1)
        p_ckpt = solution.probability_of(lambda m: m[_CHECKPOINTING] == 1)
        p_recover = solution.probability_of(lambda m: m[_RECOVERING] == 1)

        failure_rate = (
            params.compute_failure_rate * params.generic_uniform_multiplier
        )
        tau = params.checkpoint_interval
        rollback_loss = failure_rate * (p_exec * tau / 2.0 + p_ckpt * tau)
        uwf = max(0.0, p_exec - rollback_loss)

        metrics = {
            USEFUL_WORK_FRACTION: MetricValue(mean=uwf),
            TOTAL_USEFUL_WORK: MetricValue(mean=uwf * params.n_processors),
            "frac_execution": MetricValue(mean=p_exec),
            "frac_checkpointing": MetricValue(mean=p_ckpt),
            "frac_recovering": MetricValue(mean=p_recover),
        }
        details = {
            "states": float(space.size),
            "failure_rate": failure_rate,
            "blocking_overhead": blocking_checkpoint_overhead(params),
            "rollback_loss": rollback_loss,
        }
        return self.result(metrics=metrics, details=details)
