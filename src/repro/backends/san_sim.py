"""The ``san-sim`` backend: the full SAN discrete-event simulation.

Wraps :func:`repro.core.simulation.simulate` — the paper's primary
evaluation path — behind the backend protocol. This backend covers
the *entire* parameter space (timeouts, correlated failures, every
coordination mode) and reports confidence intervals; its cost is
simulation time.

Three registrations share this class: ``san-sim`` (the default,
incremental event kernel), ``san-sim-full`` (the full-rescan
reference kernel) and ``san-sim-batched`` (the numpy
structure-of-arrays kernel that advances whole replication batches in
lockstep). The scalar pair is trajectory-preserving, so ``san-sim``
and ``san-sim-full`` produce bit-identical results for the same seed.
The batched kernel preserves the seed policy (replication ``k`` draws
from ``StreamRegistry(seed).spawn(k)``) but schedules draws in a
different order, so its results are *statistically equivalent, not
bit-identical* — the ``batched-vs-incremental`` differential case in
``repro validate`` holds the two within tolerance bands.

``san-sim-batched`` requires numpy; when numpy is absent the backend
stays registered and listable but refuses to evaluate with
:class:`~repro.backends.base.UnsupportedBackendError` (never a bare
``ImportError``), and its ``supports`` veto lets sweeps skip it with
a reported reason instead of crashing.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.parameters import ModelParameters
from ..core.simulation import simulate, simulate_batched
from ..san.batched import numpy_available
from .base import (
    observed,
    BackendCapabilities,
    BaseBackend,
    EvaluationPlan,
    EvaluationResult,
    MetricValue,
    TOTAL_USEFUL_WORK,
    USEFUL_WORK_FRACTION,
    UnsupportedBackendError,
)

__all__ = ["SanSimulationBackend"]

#: Time-breakdown diagnostics the simulation reports alongside UWF.
_BREAKDOWN_METRICS = (
    "frac_execution",
    "frac_checkpointing",
    "frac_recovering",
    "frac_rebooting",
    "frac_corr_window",
)


class SanSimulationBackend(BaseBackend):
    """Stochastic simulation of the composed SAN model.

    ``kernel`` pins the event kernel for every evaluation
    (``"incremental"``, ``"full"`` or ``"batched"``); ``None`` leaves
    the choice to ``plan.simulation.kernel``.
    """

    backend_version = 1

    def __init__(self, id: str = "san-sim", kernel: Optional[str] = None) -> None:
        """Create the backend under the given registry id, optionally
        pinning the event kernel."""
        self.id = id
        self.kernel = kernel
        kernel_label = kernel or "plan-selected"
        description = (
            "discrete-event simulation of the full SAN model "
            f"({kernel_label} kernel); covers the whole parameter space, "
            "reports 95% confidence intervals"
        )
        if kernel == "batched":
            description = (
                "numpy structure-of-arrays simulation of the full SAN "
                "model: N replications advanced in lockstep (batched "
                "kernel); statistically equivalent to san-sim, not "
                "bit-identical — same seed policy, different draw order"
            )
        self.capabilities = BackendCapabilities(
            metrics=frozenset(
                {USEFUL_WORK_FRACTION, TOTAL_USEFUL_WORK, *_BREAKDOWN_METRICS}
            ),
            deterministic=False,
            exact=False,
            max_nodes=None,
            description=description,
        )

    def _effective_kernel(self, plan: EvaluationPlan) -> str:
        """The kernel this evaluation would actually run on."""
        return self.kernel or plan.simulation.kernel

    def supports(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> Optional[str]:
        """Veto batched evaluation when numpy is missing, so sweeps
        skip this backend with a reported reason."""
        if self._effective_kernel(plan) == "batched" and not numpy_available():
            return (
                "the batched kernel requires numpy, which is not "
                "installed; use san-sim or san-sim-full instead"
            )
        return None

    @observed
    def evaluate(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> EvaluationResult:
        """Run ``plan.simulation.replications`` replications rooted at
        ``plan.seed`` and report every metric the model measures."""
        if self._effective_kernel(plan) == "batched" and not numpy_available():
            raise UnsupportedBackendError(
                f"backend {self.id!r} cannot run: the batched kernel "
                "requires numpy, which is not installed; use san-sim "
                "or san-sim-full instead"
            )
        self.check(params, plan)
        sim_plan = plan.simulation
        if self.kernel is not None and sim_plan.kernel != self.kernel:
            # Pinning a scalar kernel must also drop an inherited
            # batch_size (only valid alongside kernel="batched").
            batch_size = sim_plan.batch_size if self.kernel == "batched" else None
            sim_plan = replace(sim_plan, kernel=self.kernel, batch_size=batch_size)
        outcome = simulate(params, sim_plan, seed=plan.seed)
        metrics = {
            USEFUL_WORK_FRACTION: MetricValue(
                mean=outcome.useful_work_fraction.mean,
                half_width=outcome.useful_work_fraction.half_width,
            ),
            TOTAL_USEFUL_WORK: MetricValue(
                mean=outcome.total_useful_work.mean,
                half_width=outcome.total_useful_work.half_width,
            ),
        }
        for name, interval in outcome.breakdown.items():
            metrics[name] = MetricValue(
                mean=interval.mean, half_width=interval.half_width
            )
        details = {
            "replications": float(sim_plan.replications),
            "events": float(sum(outcome.event_counts)),
        }
        if sim_plan.kernel == "batched":
            stats = getattr(simulate_batched, "last_kernel_stats", None)
            if stats is not None:
                details["batch_width"] = float(stats.batch_width)
                details["batch_occupancy"] = float(stats.batch_occupancy)
                details["scalar_fallback_rate"] = float(
                    stats.scalar_fallback_rate
                )
        counters = outcome.counters
        if counters is not None:
            details["failures"] = float(counters.failures)
            details["recoveries"] = float(counters.recoveries)
        return self.result(metrics=metrics, details=details)
