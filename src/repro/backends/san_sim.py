"""The ``san-sim`` backend: the full SAN discrete-event simulation.

Wraps :func:`repro.core.simulation.simulate` — the paper's primary
evaluation path — behind the backend protocol. This backend covers
the *entire* parameter space (timeouts, correlated failures, every
coordination mode) and reports confidence intervals; its cost is
simulation time.

Two registrations share this class: ``san-sim`` (the default,
incremental event kernel) and ``san-sim-full`` (the full-rescan
reference kernel). Both kernels are trajectory-preserving, so the
two backends produce bit-identical results for the same seed; the
second exists for A/B verification through the same interface the
figures use.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.parameters import ModelParameters
from ..core.simulation import simulate
from .base import (
    observed,
    BackendCapabilities,
    BaseBackend,
    EvaluationPlan,
    EvaluationResult,
    MetricValue,
    TOTAL_USEFUL_WORK,
    USEFUL_WORK_FRACTION,
)

__all__ = ["SanSimulationBackend"]

#: Time-breakdown diagnostics the simulation reports alongside UWF.
_BREAKDOWN_METRICS = (
    "frac_execution",
    "frac_checkpointing",
    "frac_recovering",
    "frac_rebooting",
    "frac_corr_window",
)


class SanSimulationBackend(BaseBackend):
    """Stochastic simulation of the composed SAN model.

    ``kernel`` pins the event kernel for every evaluation
    (``"incremental"`` or ``"full"``); ``None`` leaves the choice to
    ``plan.simulation.kernel``.
    """

    backend_version = 1

    def __init__(self, id: str = "san-sim", kernel: Optional[str] = None) -> None:
        """Create the backend under the given registry id, optionally
        pinning the event kernel."""
        self.id = id
        self.kernel = kernel
        kernel_label = kernel or "plan-selected"
        self.capabilities = BackendCapabilities(
            metrics=frozenset(
                {USEFUL_WORK_FRACTION, TOTAL_USEFUL_WORK, *_BREAKDOWN_METRICS}
            ),
            deterministic=False,
            exact=False,
            max_nodes=None,
            description=(
                "discrete-event simulation of the full SAN model "
                f"({kernel_label} kernel); covers the whole parameter space, "
                "reports 95% confidence intervals"
            ),
        )

    @observed
    def evaluate(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> EvaluationResult:
        """Run ``plan.simulation.replications`` replications rooted at
        ``plan.seed`` and report every metric the model measures."""
        self.check(params, plan)
        sim_plan = plan.simulation
        if self.kernel is not None and sim_plan.kernel != self.kernel:
            sim_plan = replace(sim_plan, kernel=self.kernel)
        outcome = simulate(params, sim_plan, seed=plan.seed)
        metrics = {
            USEFUL_WORK_FRACTION: MetricValue(
                mean=outcome.useful_work_fraction.mean,
                half_width=outcome.useful_work_fraction.half_width,
            ),
            TOTAL_USEFUL_WORK: MetricValue(
                mean=outcome.total_useful_work.mean,
                half_width=outcome.total_useful_work.half_width,
            ),
        }
        for name, interval in outcome.breakdown.items():
            metrics[name] = MetricValue(
                mean=interval.mean, half_width=interval.half_width
            )
        details = {
            "replications": float(sim_plan.replications),
            "events": float(sum(outcome.event_counts)),
        }
        counters = outcome.counters
        if counters is not None:
            details["failures"] = float(counters.failures)
            details["recoveries"] = float(counters.recoveries)
        return self.result(metrics=metrics, details=details)
