"""The ``analytical`` backend: renewal-theory closed forms.

Wraps the :mod:`repro.analytical` closed forms (Section 5's
coordination order statistic, the renewal useful-work model that
generalises Young/Daly/Vaidya) behind the backend protocol. Instant
to evaluate and deterministic, at the price of ignoring the dynamics
the SAN model exists for: timeout-abort rounds, correlated-failure
bursts, I/O contention.

The same helpers that translate a :class:`ModelParameters` into the
closed forms' inputs (expected coordination time, blocking checkpoint
overhead) are shared with the ``ctmc`` backend, so the two exact
paths agree on what the abstracted parameters mean.
"""

from __future__ import annotations

from typing import Optional

from ..analytical import coordination as coordination_math
from ..analytical import useful_work as renewal
from ..core.parameters import CoordinationMode, ModelParameters
from .base import (
    observed,
    BackendCapabilities,
    BaseBackend,
    COORDINATION_ONLY_USEFUL_FRACTION,
    EvaluationPlan,
    EvaluationResult,
    MEAN_COORDINATION_TIME,
    MetricValue,
    TOTAL_USEFUL_WORK,
    USEFUL_WORK_FRACTION,
    UnsupportedBackendError,
    non_flat_strategy,
)

__all__ = [
    "AnalyticalBackend",
    "expected_coordination_time_of",
    "blocking_checkpoint_overhead",
]


def expected_coordination_time_of(params: ModelParameters) -> float:
    """E[coordination time] implied by the coordination mode.

    ``FIXED`` and ``AGGREGATE_EXPONENTIAL`` both have mean ``mttq``;
    ``MAX_OF_EXPONENTIALS`` is the order statistic ``mttq * H_n`` over
    the coordinating population.
    """
    if params.coordination_mode == CoordinationMode.MAX_OF_EXPONENTIALS:
        return coordination_math.expected_coordination_time(
            params.coordination_population, params.mttq
        )
    return params.mttq


def blocking_checkpoint_overhead(params: ModelParameters) -> float:
    """Expected blocking time per checkpoint: quiesce broadcast +
    coordination + dump (the paper's ``delta``)."""
    return (
        params.quiesce_broadcast_latency
        + expected_coordination_time_of(params)
        + params.checkpoint_dump_time
    )


class AnalyticalBackend(BaseBackend):
    """Closed-form evaluation (no simulation, no state space)."""

    id = "analytical"
    backend_version = 1
    capabilities = BackendCapabilities(
        metrics=frozenset(
            {
                USEFUL_WORK_FRACTION,
                TOTAL_USEFUL_WORK,
                MEAN_COORDINATION_TIME,
                COORDINATION_ONLY_USEFUL_FRACTION,
            }
        ),
        deterministic=True,
        exact=False,
        max_nodes=None,
        description=(
            "renewal-theory closed forms (Young/Daly-style useful work, "
            "max-of-exponentials coordination law); instant, ignores "
            "timeouts and correlated failures"
        ),
    )

    def supports(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> Optional[str]:
        """Closed forms exist only for the renewal-friendly slice of
        the parameter space when useful work is requested."""
        spec = non_flat_strategy(plan)
        if spec is not None:
            return (
                f"the closed forms model only the flat coordinated "
                f"checkpoint protocol; strategy {spec!r} needs a sampled "
                f"SAN backend (san-sim)"
            )
        wants_work = any(
            metric in (USEFUL_WORK_FRACTION, TOTAL_USEFUL_WORK)
            for metric in plan.metrics
        )
        if not wants_work:
            return None
        if params.timeout is not None:
            return (
                "the renewal model has no closed form for timeout-abort "
                "coordination rounds"
            )
        if params.prob_correlated_failure > 0:
            return "correlated failure bursts break the renewal assumption"
        if (
            params.generic_correlated_coefficient > 0
            and params.generic_correlated_mode != "uniform"
        ):
            return (
                "modulated generic correlated failures are not a "
                "constant-rate process"
            )
        return None

    @observed
    def evaluate(
        self, params: ModelParameters, plan: EvaluationPlan
    ) -> EvaluationResult:
        """Evaluate the requested closed forms exactly."""
        spec = non_flat_strategy(plan)
        if spec is not None:
            raise UnsupportedBackendError(
                f"backend {self.id!r} cannot run: the closed forms model "
                f"only the flat coordinated checkpoint protocol; strategy "
                f"{spec!r} needs a sampled SAN backend (san-sim)"
            )
        self.check(params, plan)
        overhead = blocking_checkpoint_overhead(params)
        mtbf = params.system_mtbf / params.generic_uniform_multiplier
        metrics = {}
        for name in plan.metrics:
            if name in (USEFUL_WORK_FRACTION, TOTAL_USEFUL_WORK):
                uwf = renewal.useful_work_fraction(
                    params.checkpoint_interval, overhead, mtbf, params.mttr
                )
                metrics[USEFUL_WORK_FRACTION] = MetricValue(mean=uwf)
                metrics[TOTAL_USEFUL_WORK] = MetricValue(
                    mean=uwf * params.n_processors
                )
            elif name == MEAN_COORDINATION_TIME:
                metrics[name] = MetricValue(
                    mean=expected_coordination_time_of(params)
                )
            elif name == COORDINATION_ONLY_USEFUL_FRACTION:
                # Figure 5's closed form, generalised to every
                # coordination mode via the mode's expected quiesce time.
                interval = params.checkpoint_interval
                metrics[name] = MetricValue(
                    mean=interval / (interval + overhead)
                )
        details = {
            "blocking_overhead": overhead,
            "effective_system_mtbf": mtbf,
        }
        return self.result(metrics=metrics, details=details)
