"""The backend registry: name -> :class:`~repro.backends.base.Backend`.

Backends register at import time of :mod:`repro.backends`; everything
downstream resolves them by id::

    from repro.backends import get_backend, backend_ids
    backend = get_backend("ctmc")

The registry is intentionally tiny — a dict plus clear errors — so
alternative backends (a sharded runner, a remote service) can slot in
by calling :func:`register` without touching the consumers.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Backend, UnknownBackendError

__all__ = [
    "register",
    "unregister",
    "get_backend",
    "backend_ids",
    "all_backends",
]

_REGISTRY: Dict[str, Backend] = {}


def register(backend: Backend) -> Backend:
    """Register a backend under its ``id``; returns it for chaining.

    Re-registering an id is an error (it would silently redirect
    cached results and sweeps) — :func:`unregister` first.
    """
    if backend.id in _REGISTRY:
        raise ValueError(f"backend id {backend.id!r} is already registered")
    _REGISTRY[backend.id] = backend
    return backend


def unregister(name: str) -> None:
    """Remove a registered backend (primarily for tests)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> Backend:
    """The backend registered under ``name``.

    Raises :class:`~repro.backends.base.UnknownBackendError` naming
    the known ids, so a typo'd ``--backend`` is self-explanatory.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}"
        ) from None


def backend_ids() -> List[str]:
    """Sorted ids of every registered backend."""
    return sorted(_REGISTRY)


def all_backends() -> List[Backend]:
    """Every registered backend, sorted by id."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
