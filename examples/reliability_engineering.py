#!/usr/bin/env python
"""Reliability engineering with the library's analysis toolbox.

Beyond regenerating the paper, the repository is a small reliability
workbench. This example strings four of its tools together on one
question — "how does a correlated-failure burst actually behave?":

1. calibrate the burst model from a target conditional probability
   (Section 6's arithmetic);
2. solve the resulting birth-death chain exactly (state-space CTMC);
3. solve its *transient* behaviour (uniformization): how quickly does
   a burst die out?
4. generate a synthetic failure trace with those parameters and check
   the burstiness is visible in trace statistics.

Run:  python examples/reliability_engineering.py
"""

import numpy as np

from repro.analytical import markov
from repro.failures import CorrelationSpec, clustering_coefficient, generate_trace
from repro.core import HOUR, MINUTE, YEAR
from repro.san import StateSpaceGenerator, TransientSolver


def main() -> None:
    n_nodes, mttf, mttr = 1024, 25 * YEAR, 10 * MINUTE
    lam, mu = 1.0 / mttf, 1.0 / mttr

    print("1. Calibration (Section 6)")
    print("--------------------------")
    spec = CorrelationSpec.from_conditional_probability(
        p=0.3, mu=mu, n_nodes=n_nodes, lam=lam
    )
    print(f"   target p = 0.3  =>  r = {spec.r:.1f} (the paper rounds to ~600)")
    print(f"   expected recovery attempts per burst: "
          f"{markov.expected_recoveries_per_burst(0.3):.2f}")
    print()

    print("2. Exact steady state of the birth-death chain")
    print("-----------------------------------------------")
    model = markov.build_birth_death_model(n_nodes, lam, spec.r, mu, max_failures=8)
    space = StateSpaceGenerator(model).generate()
    steady = space.steady_state()
    for i in range(4):
        p = steady.probability_of(lambda m, i=i: m["failures"] == i)
        print(f"   P(F_{i}) = {p:.6f}")
    print()

    print("3. Transient: how fast does a burst die out?")
    print("---------------------------------------------")
    # Start *inside* a burst (one failure outstanding) and watch the
    # probability of being back to healthy F_0.
    start_index = next(
        i for i, marking in enumerate(space.markings)
        if dict(zip(space.place_names, marking))["failures"] == 1
    )
    pi0 = [0.0] * space.size
    pi0[start_index] = 1.0
    solver = TransientSolver(space, initial=pi0)
    for minutes in (5, 10, 20, 40):
        p_healthy = solver.solve(minutes * MINUTE).probability_of(
            lambda m: m["failures"] == 0
        )
        print(f"   P(healthy after {minutes:>2} min) = {p_healthy:.3f}")
    print()

    print("4. Synthetic trace statistics")
    print("------------------------------")
    horizon = 20000 * HOUR
    plain = generate_trace(n_nodes, mttf, horizon, seed=1)
    bursty = generate_trace(
        n_nodes, mttf, horizon, seed=1, p_e=0.3, r=spec.r, window=3 * MINUTE
    )
    window = 5 * MINUTE
    print(f"   failures (independent): {len(plain)}, "
          f"clustering within 5 min: {clustering_coefficient(plain, window):.3f}")
    print(f"   failures (correlated):  {len(bursty)}, "
          f"clustering within 5 min: {clustering_coefficient(bursty, window):.3f}")
    print()
    print("Reading: the burst decays on the recovery timescale (minutes),")
    print("which is why propagation-correlated failures barely dent useful")
    print("work (Figure 7) while a permanent rate increase is ruinous")
    print("(Figure 8).")


if __name__ == "__main__":
    main()
