#!/usr/bin/env python
"""Design-space exploration: pick interval and machine size together.

Uses the renewal-model optimizer (`repro.analytical.design`) to sweep
the joint space, then re-validates the winning corner with the full
SAN simulation.

Run:  python examples/design_space.py
"""

from repro.analytical.design import DesignSpec, explore
from repro.core import (
    HOUR,
    MINUTE,
    YEAR,
    ModelParameters,
    SimulationPlan,
    simulate,
)


def main() -> None:
    spec = DesignSpec(
        processors_per_node=8,
        mttf_node=1 * YEAR,
        mttr=10 * MINUTE,
        blocking_overhead=57.0,  # quiesce (10 s) + dump (46.8 s)
    )
    grid = [2**k for k in range(13, 19)]

    print("Renewal-model design space (interval optimised per size)")
    print("--------------------------------------------------------")
    print("rank  processors  interval     predicted UWF   predicted TUW")
    points = explore(spec, processor_grid=grid)
    for rank, point in enumerate(points, start=1):
        print(
            f"{rank:>4}  {point.n_processors:>10}  "
            f"{point.interval / MINUTE:6.1f} min   "
            f"{point.useful_work_fraction:13.3f}   "
            f"{point.total_useful_work:13.0f}"
        )

    winner = points[0]
    print()
    print("Validating the winner by full simulation")
    print("----------------------------------------")
    params = ModelParameters(
        n_processors=winner.n_processors,
        processors_per_node=spec.processors_per_node,
        mttf_node=spec.mttf_node,
        mttr=spec.mttr,
        checkpoint_interval=winner.interval,
    )
    plan = SimulationPlan(warmup=30 * HOUR, observation=400 * HOUR, replications=3)
    result = simulate(params, plan, seed=77)
    print(f"  predicted UWF: {winner.useful_work_fraction:.3f}")
    print(f"  simulated UWF: {result.useful_work_fraction}")
    print(f"  simulated TUW: {result.total_useful_work.mean:.0f} job units")


if __name__ == "__main__":
    main()
