#!/usr/bin/env python
"""Checkpoint-interval tuning: classic formulas vs the full model.

Young's and Daly's closed forms prescribe an optimum checkpoint
interval from the overhead and MTBF alone. The paper argues that for
large-scale systems with background checkpoint write-back, the loss
from failures dominates the overhead of checkpointing often — so over
any *practical* range there is no interior optimum, and intervals of
15–30 minutes beat today's hour-scale practice.

This example puts all three side by side for a 64K-processor machine.

Run:  python examples/checkpoint_interval_tuning.py
"""

from repro.analytical import daly, young
from repro.core import (
    HOUR,
    MINUTE,
    YEAR,
    ModelParameters,
    SimulationPlan,
    simulate,
)

INTERVALS_MIN = (15, 30, 60, 120, 240)
PLAN = SimulationPlan(warmup=30 * HOUR, observation=300 * HOUR, replications=3)


def main() -> None:
    base = ModelParameters(n_processors=65536, mttf_node=1 * YEAR)
    mtbf = base.system_mtbf
    overhead = base.mttq + base.checkpoint_dump_time  # blocking part only

    print(f"system MTBF: {mtbf / MINUTE:.1f} min, "
          f"blocking checkpoint overhead: {overhead:.1f} s")
    print()
    print("Closed-form optima")
    print("------------------")
    print(f"  Young: {young.optimal_interval(overhead, mtbf) / MINUTE:6.1f} min")
    print(f"  Daly:  {daly.optimal_interval(overhead, mtbf) / MINUTE:6.1f} min")
    print("  (both below the 15-minute practicality floor, as the paper notes)")
    print()

    print("Full model across the practical range")
    print("-------------------------------------")
    print("interval   simulated UWF    Daly UWF    Young UWF")
    for interval_min in INTERVALS_MIN:
        interval = interval_min * MINUTE
        result = simulate(
            base.with_overrides(checkpoint_interval=interval), PLAN, seed=23
        )
        daly_uwf = daly.useful_fraction(interval, overhead, base.mttr, mtbf)
        young_uwf = young.useful_fraction(interval, overhead, mtbf, base.mttr)
        print(
            f"{interval_min:>5} min   "
            f"{result.useful_work_fraction.mean:12.3f}  "
            f"{daly_uwf:10.3f}  {young_uwf:10.3f}"
        )
    print()
    print("Reading: simulated UWF is ~flat from 15 to 30 minutes and falls")
    print("steeply past 30 — no interior optimum in the practical range.")


if __name__ == "__main__":
    main()
