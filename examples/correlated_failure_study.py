#!/usr/bin/env python
"""Correlated failures: propagation bursts vs generic correlation.

The paper's Section 6/7.3 distinguishes two kinds of correlated
failures and reaches opposite conclusions about them:

* error-propagation bursts (elevated rate only around recoveries)
  barely move the useful work fraction;
* generic correlated failures (system failure rate scaled by
  ``1 + alpha * r`` over the whole life) devastate scalability.

This example reproduces both effects on a 256K-processor system and
shows the Section 6 calibration arithmetic connecting the conditional
failure probability ``p`` to the rate factor ``r``.

Run:  python examples/correlated_failure_study.py
"""

from repro.analytical import markov
from repro.core import (
    HOUR,
    MINUTE,
    YEAR,
    ModelParameters,
    SimulationPlan,
    simulate,
)

PLAN = SimulationPlan(warmup=30 * HOUR, observation=300 * HOUR, replications=3)


def main() -> None:
    base = ModelParameters(n_processors=262144, mttf_node=3 * YEAR)

    print("Section 6 calibration")
    print("---------------------")
    n, p, mttr, mttf = 1024, 0.3, 10 * MINUTE, 25 * YEAR
    r = markov.frate_factor(p, 1 / mttr, n, 1 / mttf)
    print(f"  n={n}, p={p}, MTTR=10 min, MTTF=25 yr  =>  r = {r:.0f} (paper: ~600)")
    print(
        f"  expected recovery attempts per burst: "
        f"{markov.expected_recoveries_per_burst(p):.2f}"
    )
    print()

    print("Error-propagation correlated failures (windows around recovery)")
    print("----------------------------------------------------------------")
    for p_e in (0.0, 0.1, 0.2):
        result = simulate(
            base.with_overrides(
                prob_correlated_failure=p_e, frate_correlated_factor=400.0
            ),
            PLAN,
            seed=31,
        )
        print(f"  p_e = {p_e:4.2f}: UWF = {result.useful_work_fraction.mean:.3f}")
    print("  (flat, as in the paper's Figure 7)")
    print()

    print("Generic correlated failures (system rate x (1 + alpha*r))")
    print("----------------------------------------------------------")
    for alpha in (0.0, 0.0025):
        result = simulate(
            base.with_overrides(
                generic_correlated_coefficient=alpha,
                frate_correlated_factor=400.0,
            ),
            PLAN,
            seed=37,
        )
        label = "without" if alpha == 0 else "with   "
        print(f"  {label} (alpha={alpha}): UWF = {result.useful_work_fraction.mean:.3f}")
    print("  (a large drop at scale, as in the paper's Figure 8)")


if __name__ == "__main__":
    main()
