"""CI smoke test for the resilience layer.

Runs a tiny sweep three ways and asserts the guarantees that
``docs/RESILIENCE.md`` promises:

1. an uninterrupted run (the reference);
2. a run killed by an injected abort after 2 of 4 points, with a torn
   journal tail, then resumed — must simulate only the remaining
   points and reproduce the reference bit-identically;
3. a run with an injected crash on a point's first attempt — must
   retry with a fresh seed and finish with no failures.

Exits non-zero (via assert) on any violation. Usage::

    PYTHONPATH=src python examples/resilience_smoke.py
"""

import sys
import tempfile

from repro.core import HOUR, ModelParameters, SimulationPlan
from repro.experiments import (
    FaultPlan,
    ResilienceOptions,
    RetryPolicy,
    SweepAborted,
    SweepPoint,
    run_sweep,
)
from repro.experiments.faultinject import corrupt_journal_tail

PLAN = SimulationPlan(warmup=1 * HOUR, observation=10 * HOUR, replications=1)
POINTS = [
    SweepPoint("smoke", float(i + 1), ModelParameters(n_processors=8192))
    for i in range(4)
]


def sweep(**kwargs):
    return run_sweep(
        "smoke", "Smoke", "x", "useful_work_fraction", POINTS, PLAN,
        seed=42, **kwargs,
    )


def main():
    print("reference run (uninterrupted)...")
    reference = sweep()
    assert len(reference.series["smoke"]) == 4

    print("interrupted run: abort after 2 points, tear the journal tail...")
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        try:
            sweep(resilience=ResilienceOptions(
                checkpoint_dir=checkpoint_dir,
                fault_plan=FaultPlan().abort_after_points(2),
            ))
            raise AssertionError("injected abort did not fire")
        except SweepAborted:
            pass
        corrupt_journal_tail(f"{checkpoint_dir}/smoke.journal.jsonl")

        print("resuming...")
        progress = []
        resumed = sweep(
            progress=lambda done, total: progress.append((done, total)),
            resilience=ResilienceOptions(checkpoint_dir=checkpoint_dir),
        )
        assert progress[0] == (2, 4), (
            f"resume should start with 2 journaled points, got {progress[0]}"
        )
        assert resumed.series == reference.series, (
            "resumed figure is not bit-identical to the reference"
        )
        assert any("resumed" in note for note in resumed.notes)
        print("resume OK: 2 points from journal, figure bit-identical")

    print("crash-injection run: point 1 crashes on attempt 0...")
    retried = sweep(resilience=ResilienceOptions(
        retry=RetryPolicy(max_retries=2, backoff_base=0.01),
        fault_plan=FaultPlan().crash(1, attempts=(0,)),
    ))
    assert not retried.failures, f"unexpected failures: {retried.failures}"
    assert len(retried.series["smoke"]) == 4
    print("retry OK: crash retried, all 4 points present, no failures")

    print("resilience smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
