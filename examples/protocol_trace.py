#!/usr/bin/env python
"""Protocol deep-dive: watch the six-step protocol run per node.

Uses the message-level cluster simulator on a small machine (256 nodes)
to show what the aggregate SAN model abstracts away: the spread of
per-node quiesce times, the coordination time as their maximum, the
effect of a timeout, and the bandwidth-shared checkpoint dump.

Run:  python examples/protocol_trace.py
"""

import numpy as np

from repro.analytical import coordination
from repro.backends import EvaluationPlan, get_backend
from repro.cluster import ClusterSimulator
from repro.core import HOUR, YEAR, ModelParameters


def run(timeout, label: str) -> None:
    params = ModelParameters(
        n_processors=2048,  # 256 nodes at 8 processors each
        processors_per_node=8,
        mttf_node=50 * YEAR,  # keep failures out of the way
        mttq=10.0,
        timeout=timeout,
    )
    sim = ClusterSimulator(params, seed=99)
    result = sim.run(duration=30 * HOUR)

    coords = np.array(result.coordination_times)
    print(f"{label}")
    print(f"  checkpoint rounds: {result.rounds}, aborted: {result.aborts}, "
          f"committed to FS: {result.commits}")
    if coords.size:
        print(f"  coordination time: mean {coords.mean():6.1f} s, "
              f"min {coords.min():6.1f} s, max {coords.max():6.1f} s")
    expected = coordination.expected_coordination_time(256, 10.0)
    print(f"  order-statistic prediction (MTTQ * H_256): {expected:.1f} s")
    if timeout is not None:
        predicted_abort = coordination.abort_probability(256, 10.0, timeout)
        print(f"  predicted abort probability at timeout {timeout:.0f} s: "
              f"{predicted_abort:.2%}, observed: "
              f"{result.aborts / max(1, result.rounds):.2%}")
    print(f"  useful work fraction: {result.useful_work_fraction:.4f}")
    print()


def backend_view() -> None:
    """The same measurement through the unified backend layer."""
    params = ModelParameters(
        n_processors=2048,
        processors_per_node=8,
        mttf_node=50 * YEAR,
        mttq=10.0,
    )
    plan = EvaluationPlan(
        metrics=("mean_coordination_time",), seed=99, duration=30 * HOUR
    )
    result = get_backend("cluster").evaluate(params, plan)
    measured = result.metric("mean_coordination_time").mean
    print("Same system through the 'cluster' evaluation backend:")
    print(f"  mean coordination time: {measured:.1f} s "
          f"over {result.details['rounds']:.0f} rounds")
    print()


def main() -> None:
    print("256-node cluster, per-node exponential quiesce times (MTTQ 10 s)\n")
    run(timeout=None, label="No timeout (master waits for every 'ready')")
    run(timeout=70.0, label="Timeout 70 s (some rounds abort)")
    run(timeout=40.0, label="Timeout 40 s (most rounds abort)")
    backend_view()
    print("A timeout well above MTTQ * H_n costs nothing; below it, the")
    print("protocol degenerates into a probabilistic checkpoint-abort —")
    print("the paper's Figure 6 phenomenon, here at per-message fidelity.")


if __name__ == "__main__":
    main()
