#!/usr/bin/env python
"""Capacity planning: how many processors should the machine have?

The paper's central observation is that beyond an optimum processor
count, adding hardware *reduces* the work a system completes, because
the system-wide failure rate grows with the node count. This example
answers the capacity question for a machine specification three ways:

1. a fast renewal-model prediction (`repro.analytical.useful_work`),
2. the full SAN simulation across the candidate grid,
3. the sensitivity of the optimum to the per-node MTTF.

Run:  python examples/capacity_planning.py
"""

from repro.analytical import useful_work as renewal
from repro.core import (
    HOUR,
    MINUTE,
    YEAR,
    ModelParameters,
    SimulationPlan,
    simulate,
)

CANDIDATES = (16384, 32768, 65536, 131072, 262144)
PLAN = SimulationPlan(warmup=30 * HOUR, observation=300 * HOUR, replications=3)


def blocking_overhead(params: ModelParameters) -> float:
    """Per-checkpoint time stolen from computation: quiesce + dump
    (the file-system write happens in the background)."""
    return params.mttq + params.checkpoint_dump_time


def main() -> None:
    base = ModelParameters(mttf_node=1 * YEAR, mttr=10 * MINUTE)

    print("Renewal-model prediction")
    print("------------------------")
    predicted = renewal.optimal_processors(
        processors_per_node=base.processors_per_node,
        mttf_node=base.mttf_node,
        interval=base.checkpoint_interval,
        overhead=blocking_overhead(base),
        mttr=base.mttr,
        candidates=list(CANDIDATES),
    )
    print(f"  predicted optimum: {predicted} processors")
    print()

    print("Simulation across the candidate grid")
    print("------------------------------------")
    best = None
    for n in CANDIDATES:
        result = simulate(base.with_overrides(n_processors=n), PLAN, seed=11)
        tuw = result.total_useful_work.mean
        uwf = result.useful_work_fraction.mean
        print(f"  {n:>7} processors: UWF {uwf:.3f}, TUW {tuw:8.0f} job units")
        if best is None or tuw > best[1]:
            best = (n, tuw)
    print(f"  simulated optimum: {best[0]} processors ({best[1]:.0f} job units)")
    print()

    print("Sensitivity of the optimum to the per-node MTTF")
    print("-----------------------------------------------")
    for mttf_years in (0.5, 1, 2, 4):
        optimum = renewal.optimal_processors(
            processors_per_node=base.processors_per_node,
            mttf_node=mttf_years * YEAR,
            interval=base.checkpoint_interval,
            overhead=blocking_overhead(base),
            mttr=base.mttr,
            candidates=list(CANDIDATES),
        )
        print(f"  MTTF {mttf_years:>4} yr -> optimum {optimum} processors")


if __name__ == "__main__":
    main()
