#!/usr/bin/env python
"""Quickstart: simulate one supercomputer configuration.

Builds the paper's base system (64K processors, 8 per node, per-node
MTTF of 1 year, 30-minute coordinated checkpoints), runs a
steady-state simulation, and reports the two headline metrics —
useful work fraction and total useful work — plus where the time went.

Run:  python examples/quickstart.py
"""

from repro.core import (
    HOUR,
    MINUTE,
    YEAR,
    ModelParameters,
    SimulationPlan,
    simulate,
)


def main() -> None:
    params = ModelParameters(
        n_processors=65536,
        processors_per_node=8,
        mttf_node=1 * YEAR,
        mttr=10 * MINUTE,
        checkpoint_interval=30 * MINUTE,
    )

    print("Configuration")
    print("-------------")
    for key, value in params.describe().items():
        print(f"  {key}: {value}")
    print()

    plan = SimulationPlan(
        warmup=50 * HOUR, observation=500 * HOUR, replications=3
    )
    result = simulate(params, plan, seed=2025)

    print("Results (95% confidence)")
    print("------------------------")
    print(f"  useful work fraction: {result.useful_work_fraction}")
    print(f"  total useful work:    {result.total_useful_work} job units")
    print()
    print("Where the time went")
    print("-------------------")
    for name, interval in sorted(result.breakdown.items()):
        print(f"  {name}: {interval.mean:.4f}")
    print()
    counters = result.counters
    print("Event counts (last replication)")
    print("-------------------------------")
    print(f"  failures: {counters.failures}, recoveries: {counters.recoveries}")
    print(
        f"  checkpoints buffered/committed: "
        f"{counters.checkpoints_buffered}/{counters.checkpoints_committed}"
    )


if __name__ == "__main__":
    main()
