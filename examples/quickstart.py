#!/usr/bin/env python
"""Quickstart: evaluate one supercomputer configuration.

Builds the paper's base system (64K processors, 8 per node, per-node
MTTF of 1 year, 30-minute coordinated checkpoints) and evaluates it
through the unified backend layer — the same ``Backend`` protocol the
figure harness uses — reporting the two headline metrics (useful work
fraction and total useful work) plus where the time went.

Run:  python examples/quickstart.py
"""

from repro.backends import EvaluationPlan, get_backend
from repro.core import HOUR, MINUTE, YEAR, ModelParameters, SimulationPlan


def main() -> None:
    params = ModelParameters(
        n_processors=65536,
        processors_per_node=8,
        mttf_node=1 * YEAR,
        mttr=10 * MINUTE,
        checkpoint_interval=30 * MINUTE,
    )

    print("Configuration")
    print("-------------")
    for key, value in params.describe().items():
        print(f"  {key}: {value}")
    print()

    backend = get_backend("san-sim")
    plan = EvaluationPlan(
        metrics=("useful_work_fraction", "total_useful_work"),
        simulation=SimulationPlan(
            warmup=50 * HOUR, observation=500 * HOUR, replications=3
        ),
        seed=2025,
    )
    result = backend.evaluate(params, plan)

    uwf = result.metric("useful_work_fraction")
    tuw = result.metric("total_useful_work")
    print(f"Results via backend {result.backend!r} (95% confidence)")
    print("------------------------------------------")
    print(f"  useful work fraction: {uwf.mean:.4f} ± {uwf.half_width:.4f}")
    print(f"  total useful work:    {tuw.mean:.4f} ± {tuw.half_width:.4f} job units")
    print()
    print("Where the time went")
    print("-------------------")
    for name in sorted(result.metrics):
        if name.startswith("frac_"):
            print(f"  {name}: {result.metrics[name].mean:.4f}")
    print()
    print("Event counts (last replication)")
    print("-------------------------------")
    print(
        f"  failures: {result.details['failures']:.0f}, "
        f"recoveries: {result.details['recoveries']:.0f}"
    )
    print(f"  simulated events: {result.details['events']:.0f}")
    print()
    print("The result round-trips as versioned JSON for archival:")
    print(f"  schema_version={result.schema_version}, "
          f"repro_version={result.repro_version}")


if __name__ == "__main__":
    main()
