#!/usr/bin/env python
"""Job completion time: from steady-state fractions to deadlines.

The paper's useful-work fraction answers "what fraction of the machine
am I getting?" — but a scientist asks "when will my job finish?".
This example runs the *terminating* analysis: simulate the full system
until a job of fixed size — measured in **processor-hours**, so the
same job is compared across machine sizes — is durably checkpointed,
and report completion-time statistics.

Two things to notice:

* the machine size minimising completion time coincides with the
  steady-state optimum (the job takes ``J / TUW`` wall hours, so
  maximum total useful work = fastest completion);
* completion times spread — the p10–p90 band matters for deadline
  planning in a way no steady-state average can express.

The work ledger accrues whole-machine hours, so a ``J``
processor-hour job is ``J / n`` machine-hours on ``n`` processors.

Run:  python examples/job_completion.py
"""

from repro.core import (
    HOUR,
    YEAR,
    ModelParameters,
    completion_study,
)

#: Job size in processor-hours (about four days of a 32K machine).
JOB_PROCESSOR_HOURS = 32768 * 100.0


def main() -> None:
    print(f"Job: {JOB_PROCESSOR_HOURS / 1e6:.2f}M processor-hours")
    print("(per-node MTTF 1 year, MTTR 10 min, 30-minute checkpoints)\n")
    print("processors   mean completion   p10      p90      stretch  incomplete")
    print("----------   ---------------   ------   ------   -------  ----------")
    for n in (32768, 65536, 131072, 262144):
        params = ModelParameters(n_processors=n, mttf_node=1 * YEAR)
        study = completion_study(
            params, JOB_PROCESSOR_HOURS / n, replications=7, seed=101
        )
        mean_h = study.mean_time.mean / HOUR
        p10 = study.percentile(10) / HOUR
        p90 = study.percentile(90) / HOUR
        print(
            f"{n:>10}   {mean_h:12.1f} h   {p10:5.1f} h  {p90:5.1f} h  "
            f"{study.mean_stretch:7.2f}  {study.incomplete:>10}"
        )
    print()
    print("Reading: the job finishes fastest near 128K processors — the")
    print("steady-state total-useful-work optimum — and slows down again on")
    print("a 256K machine whose extra hardware only adds failures. The")
    print("stretch column is the slowdown vs a failure-free, overhead-free")
    print("machine of the same size.")


if __name__ == "__main__":
    main()
